// ilps::obs — per-rank event tracing. The runtime analogue of Turbine's
// MPE-based logging on Blue Gene/Q (the instrumentation behind the
// paper's task-rate and utilization plots): every rank owns a fixed-size
// ring buffer of typed events with monotonic timestamps; at end of run
// the World's buffers are merged and exported as a Chrome trace
// (chrome://tracing / Perfetto), a per-rank utilization table, and
// metrics.json (see export.h).
//
// Cost model: when tracing is off (the default), every instrumentation
// site is one thread_local load and a predictable branch; nothing is
// allocated. When on, an event is a timestamp read plus a 40-byte store
// into a preallocated ring that overwrites its oldest entries (newest
// events always survive). Compile with -DILPS_OBS_OFF to remove even the
// branch.
//
// Gating: ILPS_TRACE=1 enables event collection and end-of-run export;
// ILPS_METRICS=1 enables the metrics registry alone (see metrics.h).
// Tests toggle collection programmatically with set_trace_enabled().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/sync.h"
#include "common/timer.h"

namespace ilps::obs {

// The event taxonomy (docs/observability.md). Span kinds appear as
// Begin/End pairs; the rest are instants. `a` and `b` are per-kind
// payload slots (ids, ranks, byte counts) named in kind_args().
enum class EventKind : uint16_t {
  // task lifecycle
  kTaskDispatch = 1,  // server hands a unit to a client   a=unit id b=client
  kTaskRun,           // span: client evaluates a payload  a=unit id
  kTaskFailed,        // worker reported a failure         a=unit id b=worker
  kRequeue,           // unit re-dispatched after failure  a=unit id b=attempts
  // ADLB traffic
  kAdlbPut,      // Put accepted by a server          a=unit id b=type
  kAdlbGet,      // Get request arrived               a=client  b=type
  kAdlbPark,     // Get parked (no work of type)      a=client  b=type
  kAdlbGetWait,  // span: client blocked in Get       a=type
  kSteal,        // rebalance batch shipped           a=peer    b=units
  kHungry,       // hungry notice broadcast           a=type
  // data store
  kDataSubscribe,  // subscribe registered            a=datum id b=client
  kDataNotify,     // close fanned out                a=datum id b=subscribers
  // checkpoint/restart
  kCkptWrite,    // span: checkpoint file written     a=seq b=payload bytes
  kCkptRestore,  // span: snapshot applied            a=seq b=datums
  // transport
  kMpiSend,  // user-level send posted                a=dest   b=bytes
  kMpiRecv,  // blocking recv completed               a=source b=bytes
  // fault handling / termination
  kRankDead,        // this rank died (fault injection)  a=rank
  kHeartbeatDeath,  // server declared a client dead     a=client b=silent ms
  kTermToken,       // termination token handled         a=count  b=black/init
  kShutdown,        // server concluded global quiet
  // server loop
  kServerHandle,  // span: one message handled          a=tag b=bytes
  // rule engine
  kRuleCreated,  // a=rule id  b=inputs
  kRuleFired,    // a=task type
  kRuleStuck,    // pending at termination (deadlock)  a=rule id b=waiting inputs
  kDatumStuck,   // unclosed datum with subscribers at shutdown  a=datum id b=subscribers
  // serve request lifecycle (request-scoped tracing; src/serve)
  kReqSubmit,  // request admitted by Service::submit   a=request id
  kReqBegin,   // owner engine began evaluating it      a=request id
  kReqDone,    // completion notice reached the hub     a=request id b=failed
};

enum class Phase : uint8_t { kBegin = 0, kEnd = 1, kInstant = 2 };

struct Event {
  double t = 0;  // seconds on the ilps::wtime() monotonic epoch
  int64_t a = 0;
  int64_t b = 0;
  int64_t req = 0;  // serve request id in scope when emitted (0 = none)
  int32_t rank = -1;
  EventKind kind{};
  Phase ph{};
};

// Display names for exporters (stable, dotted lower-case).
const char* kind_name(EventKind k);
const char* kind_category(EventKind k);
// Span kinds whose duration counts as "busy" in the utilization table.
bool kind_is_busy(EventKind k);

// One rank's ring buffer. Single-writer (the rank's thread); readers wait
// for the thread to join, so no synchronization is needed — which is what
// keeps emit() to a store and an increment.
class Tracer {
 public:
  void init(int rank, size_t capacity);

  // Stamps the calling thread's request id (log::thread_request) into the
  // event and returns a reference to the stored slot so the shared emit
  // path can forward it to the request-capture registry without a second
  // timestamp read.
  const Event& emit(EventKind k, Phase ph, int64_t a, int64_t b) {
    Event& e = buf_[static_cast<size_t>(count_ % cap_)];
    e.t = ilps::wtime();
    e.a = a;
    e.b = b;
    e.req = ilps::log::thread_request();
    e.rank = rank_;
    e.kind = k;
    e.ph = ph;
    ++count_;
    return e;
  }

  int rank() const { return rank_; }
  uint64_t count() const { return count_; }  // all events ever emitted
  uint64_t dropped() const { return count_ > cap_ ? count_ - cap_ : 0; }

  // Surviving events, oldest first.
  std::vector<Event> events() const;

 private:
  std::vector<Event> buf_;
  uint64_t cap_ = 0;
  uint64_t count_ = 0;
  int rank_ = -1;
};

// All ranks' tracers for one World. Created by mpi::World when tracing is
// enabled; merged after the rank threads join.
class Session {
 public:
  Session(int nranks, size_t capacity);

  int nranks() const { return static_cast<int>(tracers_.size()); }
  Tracer& rank(int r) { return tracers_[static_cast<size_t>(r)]; }
  const Tracer& rank(int r) const { return tracers_[static_cast<size_t>(r)]; }

  // Every rank's surviving events, ordered by timestamp.
  std::vector<Event> merged() const;

 private:
  std::vector<Tracer> tracers_;
};

// ---- runtime gates ----

bool trace_enabled();            // collection gate; env ILPS_TRACE, overridable
void set_trace_enabled(bool on); // programmatic override (tests)
bool metrics_enabled();          // env ILPS_METRICS, or tracing on
void set_metrics_enabled(bool on);
bool export_requested();         // env ILPS_TRACE set: runner writes files
size_t default_capacity();       // env ILPS_TRACE_BUF (events/rank), default 65536
std::string output_dir();        // env ILPS_TRACE_DIR, default "."

// ---- request-scoped tracing ----

// Scopes the calling thread to a serve request id: the tracer stamps it
// into every event emitted while the scope is live (and the log prefix
// shows it). Nest-safe — restores the previous id on destruction. Cost is
// two thread_local stores, so scopes are cheap enough for per-unit use in
// the server dispatch path.
class RequestScope {
 public:
  explicit RequestScope(int64_t req) : prev_(ilps::log::thread_request()) {
    ilps::log::set_thread_request(req);
  }
  ~RequestScope() { ilps::log::set_thread_request(prev_); }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  int64_t prev_;
};

inline int64_t current_request() { return ilps::log::thread_request(); }

// Request-capture registry: while a request id is registered, every traced
// event carrying that id is also copied into a per-request buffer so the
// full cross-rank trace can be stitched at completion (per-request
// timeline in RequestResult, slow-request exemplars, requests.jsonl).
// The gate is a relaxed atomic consulted only for events that are already
// (a) traced and (b) inside a request scope, so untraced runs and
// non-request events never touch it.
namespace detail {
extern ilps::Atomic<bool> g_req_capture;
}  // namespace detail

inline bool req_capture_active() {
  // ordering: relaxed — a pure fast-path gate. Registration happens
  // under g_capture_mu before any event of the new request can exist, so
  // a stale false only skips events that predate the registration.
  return detail::g_req_capture.load(std::memory_order_relaxed);
}

// Registers `req` for capture. Events accumulate until req_capture_take;
// per-request retention is capped (kReqCaptureCap oldest-kept events).
void req_capture_begin(int64_t req);
// Copies `e` into the buffer of e.req if registered (called by emit()).
void req_capture_note(const Event& e);
// Appends an event on behalf of a thread with no attached tracer (e.g.
// Service::submit on a user thread); stamps rank -1 and the current time.
void req_capture_note_off_rank(int64_t req, EventKind k, Phase ph, int64_t a = 0, int64_t b = 0);
// Removes and returns the captured events for `req` (empty if never
// registered). Deactivates the gate when the registry empties.
std::vector<Event> req_capture_take(int64_t req);
// Events retained per request before the oldest are dropped.
constexpr size_t kReqCaptureCap = 4096;

// ---- the per-thread emit path ----

extern thread_local Tracer* tls_tracer;

inline void attach(Tracer* t) { tls_tracer = t; }
inline void detach() { tls_tracer = nullptr; }
inline Tracer* current() { return tls_tracer; }

inline void emit(EventKind k, Phase ph, int64_t a = 0, int64_t b = 0) {
#ifndef ILPS_OBS_OFF
  if (tls_tracer != nullptr) {
    const Event& e = tls_tracer->emit(k, ph, a, b);
    if (e.req != 0 && req_capture_active()) req_capture_note(e);
  }
#else
  (void)k;
  (void)ph;
  (void)a;
  (void)b;
#endif
}

inline void instant(EventKind k, int64_t a = 0, int64_t b = 0) {
  emit(k, Phase::kInstant, a, b);
}

// RAII Begin/End pair; arms only if a tracer is attached at construction.
// Routed through emit() so request capture sees Begin/End pairs too.
class Span {
 public:
  explicit Span(EventKind k, int64_t a = 0, int64_t b = 0) : k_(k) {
#ifndef ILPS_OBS_OFF
    if (tls_tracer != nullptr) {
      armed_ = true;
      emit(k, Phase::kBegin, a, b);
    }
#else
    (void)a;
    (void)b;
#endif
  }
  ~Span() {
    if (armed_ && tls_tracer != nullptr) emit(k_, Phase::kEnd, 0, 0);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  EventKind k_;
  bool armed_ = false;
};

}  // namespace ilps::obs
