// ilps::obs — end-of-run aggregation: merged rank buffers become a Chrome
// trace (load trace.json in chrome://tracing or https://ui.perfetto.dev),
// a per-rank utilization/idle-fraction table (the shape of the paper's
// Blue Gene/Q utilization plots), and a machine-readable metrics.json.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ilps::obs {

// JSON helpers shared by the exporters, the telemetry flusher, and
// serve::Service::status_json.
std::string json_escape(const std::string& s);
std::string json_num(double v);  // %.9g

struct RankUsage {
  int rank = -1;
  std::string role;  // "engine" / "worker" / "server" ("" if unknown)
  double busy_seconds = 0;
  double window_seconds = 0;  // run window (first to last event, all ranks)
  double busy_fraction = 0;   // busy / window
  uint64_t events = 0;
  uint64_t tasks = 0;  // completed task.run spans
};

// Busy time per rank = union of its busy spans (kind_is_busy) against the
// global event window. `roles[r]` labels rank r; pass {} if unknown.
std::vector<RankUsage> utilization(const std::vector<Event>& events,
                                   const std::vector<std::string>& roles);

// Chrome trace-event JSON ("traceEvents" array of B/E/i records, one tid
// per rank, thread_name metadata from roles). Timestamps in microseconds.
std::string chrome_trace_json(const std::vector<Event>& events,
                              const std::vector<std::string>& roles);

// {"counters":{...},"gauges":{...},"histograms":{...},"utilization":[...]}
std::string metrics_json(const Metrics& m, const std::vector<RankUsage>& usage);

// Fixed-width text table of the per-rank usage rows.
std::string utilization_table(const std::vector<RankUsage>& usage);

// Writes <dir>/trace.json and <dir>/metrics.json (creating dir) and
// prints the utilization table to stderr. Returns the trace path.
std::string write_reports(const std::vector<Event>& events,
                          const std::vector<std::string>& roles, const Metrics& m,
                          const std::string& dir);

}  // namespace ilps::obs
