#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace ilps::obs {

void Gauge::set(double v) {
  bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---- Histogram ----

void Histogram::record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(v);
  sum_ += v;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  sum_ = 0;
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0) return sorted.front();
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted[rank - 1];
}

// ---- Metrics ----

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, uint64_t>> Metrics::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Metrics::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Metrics::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void Metrics::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Metrics::reset_histograms() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, h] : histograms_) h->reset();
}

Metrics& metrics() {
  static Metrics g;
  return g;
}

}  // namespace ilps::obs
