#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/timer.h"

namespace ilps::obs {

void Gauge::set(double v) {
  // ordering: relaxed — a gauge is a standalone last-writer-wins cell;
  // no reader infers other memory state from it.
  bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  // ordering: relaxed — see set(); stale reads are acceptable.
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---- Histogram ----

void Histogram::record(double v) {
  ilps::LockGuard lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  if (samples_.size() < kReservoirCap) {
    samples_.push_back(v);
  } else {
    // Algorithm R: replace a uniformly random retained sample with
    // probability cap / (count + 1), keeping the reservoir a uniform
    // sample of everything ever recorded.
    const uint64_t j = rng_.next_below(count_ + 1);
    if (j < kReservoirCap) samples_[static_cast<size_t>(j)] = v;
  }
  ++count_;
  sum_ += v;
}

uint64_t Histogram::count() const {
  ilps::LockGuard lock(mu_);
  return count_;
}

double Histogram::sum() const {
  ilps::LockGuard lock(mu_);
  return sum_;
}

double Histogram::min() const {
  ilps::LockGuard lock(mu_);
  return min_;
}

double Histogram::max() const {
  ilps::LockGuard lock(mu_);
  return max_;
}

size_t Histogram::retained() const {
  ilps::LockGuard lock(mu_);
  return samples_.size();
}

size_t Histogram::sample_bytes() const {
  ilps::LockGuard lock(mu_);
  return samples_.capacity() * sizeof(double);
}

void Histogram::reset() {
  ilps::LockGuard lock(mu_);
  samples_.clear();
  samples_.shrink_to_fit();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::percentile(double p) const {
  ilps::LockGuard lock(mu_);
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0) return sorted.front();
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  rank = std::min(std::max<size_t>(rank, 1), n);
  return sorted[rank - 1];
}

// ---- WindowHistogram ----

WindowHistogram::WindowHistogram(double window_seconds)
    : sub_seconds_(std::max(window_seconds, 1e-3) / static_cast<double>(kSubWindows)),
      window_seconds_(std::max(window_seconds, 1e-3)) {}

size_t WindowHistogram::bucket_of(double v) {
  if (!(v > kBucketFloor)) return 0;  // underflow and non-finite land in [0]
  const double idx = std::floor(std::log(v / kBucketFloor) / std::log(kBucketGrowth)) + 1.0;
  if (idx >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<size_t>(idx);
}

double WindowHistogram::bucket_value(size_t bucket) {
  if (bucket == 0) return kBucketFloor;
  // Geometric midpoint of [floor * g^(b-1), floor * g^b).
  return kBucketFloor * std::pow(kBucketGrowth, static_cast<double>(bucket) - 0.5);
}

WindowHistogram::Sub& WindowHistogram::sub_for_locked(double now) {
  const int64_t slot = static_cast<int64_t>(std::floor(now / sub_seconds_));
  Sub& s = subs_[static_cast<size_t>(slot % static_cast<int64_t>(kSubWindows))];
  if (s.slot != slot) {
    s.slot = slot;
    s.total = 0;
    s.sum = 0;
    s.n.fill(0);
  }
  return s;
}

void WindowHistogram::record(double v) { record_at(v, ilps::wtime()); }

void WindowHistogram::record_at(double v, double now) {
  ilps::LockGuard lock(mu_);
  Sub& s = sub_for_locked(now);
  ++s.n[bucket_of(v)];
  ++s.total;
  s.sum += v;
}

namespace {

// Nearest-rank percentile over merged bucket counts: returns the
// representative value of the bucket holding the rank'th sample.
double bucket_percentile(const std::array<uint64_t, WindowHistogram::kBuckets>& merged,
                         uint64_t count, double p) {
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count)));
  rank = std::min(std::max<uint64_t>(rank, 1), count);
  uint64_t seen = 0;
  for (size_t b = 0; b < WindowHistogram::kBuckets; ++b) {
    seen += merged[b];
    if (seen >= rank) return WindowHistogram::bucket_value(b);
  }
  return WindowHistogram::bucket_value(WindowHistogram::kBuckets - 1);
}

}  // namespace

WindowHistogram::Snapshot WindowHistogram::merged_locked(double now) const {
  const int64_t cur = static_cast<int64_t>(std::floor(now / sub_seconds_));
  const int64_t oldest = cur - static_cast<int64_t>(kSubWindows) + 1;
  Snapshot out;
  std::array<uint64_t, kBuckets> merged{};
  for (const Sub& s : subs_) {
    if (s.slot < oldest || s.slot > cur) continue;  // aged out or empty
    out.count += s.total;
    out.sum += s.sum;
    for (size_t b = 0; b < kBuckets; ++b) merged[b] += s.n[b];
  }
  if (out.count == 0) return out;
  out.p50 = bucket_percentile(merged, out.count, 50);
  out.p90 = bucket_percentile(merged, out.count, 90);
  out.p99 = bucket_percentile(merged, out.count, 99);
  out.p999 = bucket_percentile(merged, out.count, 99.9);
  return out;
}

WindowHistogram::Snapshot WindowHistogram::snapshot() const {
  return snapshot_at(ilps::wtime());
}

WindowHistogram::Snapshot WindowHistogram::snapshot_at(double now) const {
  ilps::LockGuard lock(mu_);
  return merged_locked(now);
}

double WindowHistogram::percentile(double p) const {
  ilps::LockGuard lock(mu_);
  const double now = ilps::wtime();
  const int64_t cur = static_cast<int64_t>(std::floor(now / sub_seconds_));
  const int64_t oldest = cur - static_cast<int64_t>(kSubWindows) + 1;
  std::array<uint64_t, kBuckets> merged{};
  uint64_t count = 0;
  for (const Sub& s : subs_) {
    if (s.slot < oldest || s.slot > cur) continue;
    count += s.total;
    for (size_t b = 0; b < kBuckets; ++b) merged[b] += s.n[b];
  }
  if (count == 0) return 0;
  return bucket_percentile(merged, count, p);
}

uint64_t WindowHistogram::count() const {
  ilps::LockGuard lock(mu_);
  return merged_locked(ilps::wtime()).count;
}

void WindowHistogram::reset() {
  ilps::LockGuard lock(mu_);
  for (Sub& s : subs_) {
    s.slot = -1;
    s.total = 0;
    s.sum = 0;
    s.n.fill(0);
  }
}

// ---- Metrics ----

Counter& Metrics::counter(const std::string& name) {
  ilps::LockGuard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  ilps::LockGuard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  ilps::LockGuard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

WindowHistogram& Metrics::window_histogram(const std::string& name, double window_seconds) {
  ilps::LockGuard lock(mu_);
  auto& slot = window_histograms_[name];
  if (!slot) slot = std::make_unique<WindowHistogram>(window_seconds);
  return *slot;
}

std::vector<std::pair<std::string, uint64_t>> Metrics::counters() const {
  ilps::LockGuard lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Metrics::gauges() const {
  ilps::LockGuard lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Metrics::histograms() const {
  ilps::LockGuard lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::vector<std::pair<std::string, const WindowHistogram*>> Metrics::window_histograms() const {
  ilps::LockGuard lock(mu_);
  std::vector<std::pair<std::string, const WindowHistogram*>> out;
  out.reserve(window_histograms_.size());
  for (const auto& [name, h] : window_histograms_) out.emplace_back(name, h.get());
  return out;
}

void Metrics::clear() {
  ilps::LockGuard lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  window_histograms_.clear();
}

void Metrics::reset_histograms() {
  ilps::LockGuard lock(mu_);
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, h] : window_histograms_) h->reset();
}

Metrics& metrics() {
  static Metrics g;
  return g;
}

}  // namespace ilps::obs
