// ilps::obs — runtime metrics registry: named counters, gauges, and
// histograms, the machine-readable complement to the event tracer. The
// per-subsystem stat structs (adlb::ServerStats, turbine::EngineStats /
// WorkerStats, mpi::TrafficStats) are published into this registry by the
// runtime at end of run, so one metrics.json exposes every layer's
// counters under stable dotted names (docs/observability.md).
//
// Counters and gauges are lock-free atomics; name lookup takes a mutex,
// so instrumentation sites should resolve a metric once and keep the
// reference (references are stable for the registry's lifetime).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ilps::obs {

class Counter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // IEEE-754 bit pattern
};

// Exact-percentile histogram: keeps raw samples (these are per-task and
// per-checkpoint timings — thousands, not billions). percentile() uses
// the nearest-rank definition: p in (0,100] maps to sorted[ceil(p/100*N)-1].
class Histogram {
 public:
  void record(double v);

  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double percentile(double p) const;  // 0 -> min, 100 -> max; 0 if empty

  // Drops every sample in place (the histogram object stays registered,
  // so cached references remain valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  double sum_ = 0;
};

class Metrics {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Name-sorted snapshots for exporters. Histogram pointers stay valid
  // for the registry's lifetime (entries are never removed, only cleared).
  std::vector<std::pair<std::string, uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  void clear();  // drop every metric (tests / fresh runs)

  // Resets every histogram's samples without unregistering the entries.
  // Used by run_with_faults between restart attempts: the final attempt's
  // timings must not accumulate samples from aborted attempts, and the
  // registered objects must survive because rank loops cache references.
  void reset_histograms();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry.
Metrics& metrics();

}  // namespace ilps::obs
