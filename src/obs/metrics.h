// ilps::obs — runtime metrics registry: named counters, gauges, and
// histograms, the machine-readable complement to the event tracer. The
// per-subsystem stat structs (adlb::ServerStats, turbine::EngineStats /
// WorkerStats, mpi::TrafficStats) are published into this registry by the
// runtime at end of run, so one metrics.json exposes every layer's
// counters under stable dotted names (docs/observability.md).
//
// Counters and gauges are lock-free relaxed atomics; name lookup takes a mutex,
// so instrumentation sites should resolve a metric once and keep the
// reference (references are stable for the registry's lifetime).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"

namespace ilps::obs {

// A relaxed stats tally (see ilps::RelaxedCounter for the ordering
// contract: readers may observe slightly stale values, nothing is
// published through it).
class Counter {
 public:
  void add(uint64_t n = 1) { v_.add(n); }
  void set(uint64_t n) { v_.store(n); }
  uint64_t value() const { return v_.load(); }

 private:
  ilps::RelaxedCounter v_;
};

class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  ilps::Atomic<uint64_t> bits_{0};  // IEEE-754 bit pattern
};

// Percentile histogram over raw samples. count/sum/min/max are exact for
// every sample ever recorded; raw-sample retention is capped at
// kReservoirCap by uniform reservoir sampling (Vitter's Algorithm R, a
// deterministic per-instance Rng), so a resident service can feed it
// indefinitely under a fixed memory bound while percentiles stay an
// unbiased estimate. Below the cap — every batch run, and per-task /
// per-checkpoint timings generally — percentiles are exact. percentile()
// uses the nearest-rank definition over the retained samples: p in
// (0,100] maps to sorted[ceil(p/100*N)-1].
class Histogram {
 public:
  // Retention cap: 64k doubles = 512 KiB worst case per histogram.
  static constexpr size_t kReservoirCap = 65536;

  void record(double v);

  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double percentile(double p) const;  // 0 -> min, 100 -> max; 0 if empty

  // Samples currently retained (== count() until the reservoir fills).
  size_t retained() const;
  // Resident bytes attributable to retained samples (regression tests
  // bound this; it never exceeds kReservoirCap * sizeof(double) plus
  // vector growth slack).
  size_t sample_bytes() const;

  // Drops every sample in place (the histogram object stays registered,
  // so cached references remain valid).
  void reset();

 private:
  mutable ilps::Mutex mu_;
  std::vector<double> samples_ ILPS_GUARDED_BY(mu_);
  uint64_t count_ ILPS_GUARDED_BY(mu_) = 0;
  double sum_ ILPS_GUARDED_BY(mu_) = 0;
  double min_ ILPS_GUARDED_BY(mu_) = 0;
  double max_ ILPS_GUARDED_BY(mu_) = 0;
  Rng rng_ ILPS_GUARDED_BY(mu_){0x1175C0FFEEull};
};

// Memory-bounded rolling-window histogram for long-lived series
// (serve.request_seconds and friends): a ring of kSubWindows sub-windows,
// each a fixed array of kBuckets log-spaced counters, covering the last
// window_seconds. record() lands in the sub-window owning `now`; querying
// merges every sub-window still inside the window, so results cover
// between (kSubWindows-1)/kSubWindows and the full window of history and
// old samples age out in sub-window granularity. Memory is fixed:
// kSubWindows * kBuckets counters (~6 KiB), independent of rate and
// uptime. Percentiles are bucket-resolution (log-spaced ~1.26x from 1us),
// exact enough for SLO p50/p99/p999 readouts.
class WindowHistogram {
 public:
  static constexpr size_t kBuckets = 96;     // [0]=underflow, then log-spaced
  static constexpr size_t kSubWindows = 8;
  static constexpr double kBucketFloor = 1e-6;  // seconds; bucket 1 starts here
  static constexpr double kBucketGrowth = 1.2589254117941673;  // 10^(1/10)

  explicit WindowHistogram(double window_seconds = 60.0);

  void record(double v);            // at the current time
  void record_at(double v, double now);  // explicit clock (tests)

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double p999 = 0;
  };

  Snapshot snapshot() const;        // over the live window
  Snapshot snapshot_at(double now) const;
  double percentile(double p) const;
  uint64_t count() const;           // samples in the live window
  double window_seconds() const { return window_seconds_; }

  void reset();

  // Bucket index for a value and the representative (geometric-mid) value
  // reported for a bucket; exposed for tests.
  static size_t bucket_of(double v);
  static double bucket_value(size_t bucket);

 private:
  struct Sub {
    int64_t slot = -1;  // floor(now / sub_seconds) when live, -1 when empty
    uint64_t total = 0;
    double sum = 0;
    std::array<uint64_t, kBuckets> n{};
  };

  Sub& sub_for_locked(double now) ILPS_REQUIRES(mu_);
  Snapshot merged_locked(double now) const ILPS_REQUIRES(mu_);

  mutable ilps::Mutex mu_;
  std::array<Sub, kSubWindows> subs_ ILPS_GUARDED_BY(mu_);
  double sub_seconds_;     // immutable after construction
  double window_seconds_;  // immutable after construction
};

class Metrics {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  // The rolling-window companion; window_seconds applies on first creation
  // only (later lookups return the existing window unchanged).
  WindowHistogram& window_histogram(const std::string& name, double window_seconds = 60.0);

  // Name-sorted snapshots for exporters. Histogram pointers stay valid
  // for the registry's lifetime (entries are never removed, only cleared).
  std::vector<std::pair<std::string, uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  std::vector<std::pair<std::string, const WindowHistogram*>> window_histograms() const;

  void clear();  // drop every metric (tests / fresh runs)

  // Resets every histogram's samples (exact and windowed) without
  // unregistering the entries. Used by run_with_faults between restart
  // attempts: the final attempt's timings must not accumulate samples from
  // aborted attempts, and the registered objects must survive because rank
  // loops cache references.
  void reset_histograms();

 private:
  mutable ilps::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ ILPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ILPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ ILPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<WindowHistogram>> window_histograms_
      ILPS_GUARDED_BY(mu_);
};

// The process-wide registry.
Metrics& metrics();

}  // namespace ilps::obs
