#include "obs/telemetry.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "common/log.h"
#include "common/timer.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace ilps::obs {

TelemetryFlusher::Config TelemetryFlusher::Config::from_env() {
  Config cfg;
  const char* dir = std::getenv("ILPS_TELEMETRY_DIR");
  if (dir != nullptr && dir[0] != '\0') cfg.dir = dir;
  const char* iv = std::getenv("ILPS_TELEMETRY_INTERVAL_MS");
  if (iv != nullptr && iv[0] != '\0') {
    long n = std::strtol(iv, nullptr, 10);
    cfg.interval_ms = n > 0 ? static_cast<int>(n) : 0;
  }
  return cfg;
}

TelemetryFlusher::TelemetryFlusher(Config cfg) : cfg_(std::move(cfg)) {}

TelemetryFlusher::~TelemetryFlusher() { stop(); }

void TelemetryFlusher::set_status_provider(std::function<std::string()> provider) {
  status_provider_ = std::move(provider);
}

void TelemetryFlusher::start() {
  if (!cfg_.enabled()) return;
  ilps::LockGuard lock(mu_);
  if (running_) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);  // best effort; opens report failure
  metrics_out_.open(fs::path(cfg_.dir) / "telemetry.jsonl",
                    std::ios::binary | std::ios::trunc);
  requests_out_.open(fs::path(cfg_.dir) / "requests.jsonl",
                     std::ios::binary | std::ios::trunc);
  if (!metrics_out_ || !requests_out_) {
    log::warn("telemetry: cannot open JSONL files in ", cfg_.dir, "; flusher disabled");
    metrics_out_.close();
    requests_out_.close();
    return;
  }
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { loop(); });
}

void TelemetryFlusher::stop() {
  {
    ilps::LockGuard lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  flush_now();  // final snapshot + drain after the loop exits
  ilps::LockGuard lock(mu_);
  metrics_out_.close();
  requests_out_.close();
  running_ = false;
}

bool TelemetryFlusher::running() const {
  ilps::LockGuard lock(mu_);
  return running_ && !stop_;
}

void TelemetryFlusher::enqueue_request(RequestRecord rec) {
  ilps::LockGuard lock(mu_);
  if (!running_ || stop_) return;
  if (queue_.size() >= kMaxQueuedRequests) {
    ++dropped_;
    return;
  }
  queue_.push_back(std::move(rec));
}

void TelemetryFlusher::loop() {
  ilps::UniqueLock lock(mu_);
  while (!stop_) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(cfg_.interval_ms);
    // Sleep out the interval; only a stop() signal ends the wait early
    // (spurious wakeups go back to sleep until the deadline).
    while (!stop_ && cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
    }
    if (stop_) break;
    lock.unlock();
    flush_now();
    lock.lock();
  }
}

void TelemetryFlusher::flush_now() {
  // The queue is swapped out and formatting happens without the lock so
  // enqueue_request never blocks behind string building; the file writes
  // retake it briefly (stream flushes are fast relative to the interval).
  std::deque<RequestRecord> drained;
  {
    ilps::LockGuard lock(mu_);
    if (!metrics_out_.is_open()) return;
    drained.swap(queue_);
  }
  const std::string snapshot = metrics_snapshot_line();
  std::vector<std::string> lines;
  lines.reserve(drained.size());
  for (const RequestRecord& rec : drained) lines.push_back(request_line(rec));

  ilps::LockGuard lock(mu_);
  if (!metrics_out_.is_open()) return;
  metrics_out_ << snapshot << "\n";
  metrics_out_.flush();
  ++snapshots_;
  for (const std::string& line : lines) {
    requests_out_ << line << "\n";
    ++written_;
  }
  if (!lines.empty()) requests_out_.flush();
}

uint64_t TelemetryFlusher::snapshots_written() const {
  ilps::LockGuard lock(mu_);
  return snapshots_;
}

uint64_t TelemetryFlusher::requests_written() const {
  ilps::LockGuard lock(mu_);
  return written_;
}

uint64_t TelemetryFlusher::requests_dropped() const {
  ilps::LockGuard lock(mu_);
  return dropped_;
}

std::string TelemetryFlusher::metrics_snapshot_line() const {
  const Metrics& m = metrics();
  std::string out = "{\"type\":\"metrics\",\"t\":" + json_num(ilps::wtime());
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : m.counters()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : m.gauges()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":" + json_num(v);
  }
  out += "},\"windows\":{";
  first = true;
  for (const auto& [name, w] : m.window_histograms()) {
    const WindowHistogram::Snapshot s = w->snapshot();
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{\"window_s\":" + json_num(w->window_seconds()) +
           ",\"count\":" + std::to_string(s.count) + ",\"sum\":" + json_num(s.sum) +
           ",\"p50\":" + json_num(s.p50) + ",\"p90\":" + json_num(s.p90) +
           ",\"p99\":" + json_num(s.p99) + ",\"p999\":" + json_num(s.p999) + "}";
  }
  out += "}";
  if (status_provider_) out += ",\"service\":" + status_provider_();
  out += "}";
  return out;
}

std::string TelemetryFlusher::request_line(const RequestRecord& rec) {
  std::string out = "{\"type\":\"request\",\"id\":" + std::to_string(rec.id) +
                    ",\"failed\":" + (rec.failed ? "true" : "false") +
                    ",\"slow\":" + (rec.slow ? "true" : "false") +
                    ",\"latency_s\":" + json_num(rec.latency_seconds) + ",\"events\":[";
  bool first = true;
  for (const Event& e : rec.events) {
    if (!first) out += ",";
    first = false;
    const char* ph = e.ph == Phase::kBegin ? "B" : e.ph == Phase::kEnd ? "E" : "i";
    out += "{\"t\":" + json_num(e.t) + ",\"name\":\"" + kind_name(e.kind) +
           "\",\"cat\":\"" + kind_category(e.kind) + "\",\"ph\":\"" + ph +
           "\",\"rank\":" + std::to_string(e.rank) + ",\"a\":" + std::to_string(e.a) +
           ",\"b\":" + std::to_string(e.b) + ",\"req\":" + std::to_string(e.req) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace ilps::obs
