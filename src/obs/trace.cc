#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "common/sync.h"

namespace ilps::obs {

thread_local Tracer* tls_tracer = nullptr;

namespace detail {
ilps::Atomic<bool> g_req_capture{false};
}  // namespace detail

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

ilps::Atomic<bool> g_trace{env_truthy("ILPS_TRACE")};
ilps::Atomic<bool> g_metrics{env_truthy("ILPS_METRICS")};

}  // namespace

bool trace_enabled() {
  // ordering: relaxed — an independent configuration gate; tests that
  // flip it synchronize through thread create/join, not through the gate.
  return g_trace.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) {
  // ordering: relaxed — see trace_enabled().
  g_trace.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() {
  // ordering: relaxed — same contract as the trace gate.
  return g_metrics.load(std::memory_order_relaxed) || trace_enabled();
}
void set_metrics_enabled(bool on) {
  // ordering: relaxed — see trace_enabled().
  g_metrics.store(on, std::memory_order_relaxed);
}

bool export_requested() { return env_truthy("ILPS_TRACE"); }

size_t default_capacity() {
  const char* v = std::getenv("ILPS_TRACE_BUF");
  if (v != nullptr) {
    long n = std::strtol(v, nullptr, 10);
    if (n > 0) return std::max<size_t>(16, static_cast<size_t>(n));
  }
  return 65536;
}

std::string output_dir() {
  const char* v = std::getenv("ILPS_TRACE_DIR");
  return (v != nullptr && v[0] != '\0') ? v : ".";
}

// ---- request capture ----

namespace {

ilps::Mutex g_capture_mu;
std::unordered_map<int64_t, std::vector<Event>> g_captures ILPS_GUARDED_BY(g_capture_mu);

}  // namespace

void req_capture_begin(int64_t req) {
  if (req == 0) return;
  ilps::LockGuard lock(g_capture_mu);
  g_captures.try_emplace(req);
  // ordering: relaxed — the gate only prompts a consult of g_captures,
  // and every consult takes g_capture_mu (see req_capture_active()).
  detail::g_req_capture.store(true, std::memory_order_relaxed);
}

void req_capture_note(const Event& e) {
  ilps::LockGuard lock(g_capture_mu);
  auto it = g_captures.find(e.req);
  if (it == g_captures.end()) return;
  if (it->second.size() < kReqCaptureCap) it->second.push_back(e);
}

void req_capture_note_off_rank(int64_t req, EventKind k, Phase ph, int64_t a, int64_t b) {
  Event e;
  e.t = ilps::wtime();
  e.a = a;
  e.b = b;
  e.req = req;
  e.rank = -1;
  e.kind = k;
  e.ph = ph;
  req_capture_note(e);
}

std::vector<Event> req_capture_take(int64_t req) {
  ilps::LockGuard lock(g_capture_mu);
  auto it = g_captures.find(req);
  if (it == g_captures.end()) return {};
  std::vector<Event> out = std::move(it->second);
  g_captures.erase(it);
  // ordering: relaxed — turning the gate off is a pure optimization; a
  // stale true costs one locked lookup that finds nothing.
  if (g_captures.empty()) detail::g_req_capture.store(false, std::memory_order_relaxed);
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) { return x.t < y.t; });
  return out;
}

// ---- kind tables ----

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTaskDispatch: return "task.dispatch";
    case EventKind::kTaskRun: return "task.run";
    case EventKind::kTaskFailed: return "task.failed";
    case EventKind::kRequeue: return "task.requeue";
    case EventKind::kAdlbPut: return "adlb.put";
    case EventKind::kAdlbGet: return "adlb.get";
    case EventKind::kAdlbPark: return "adlb.park";
    case EventKind::kAdlbGetWait: return "adlb.get_wait";
    case EventKind::kSteal: return "adlb.steal";
    case EventKind::kHungry: return "adlb.hungry";
    case EventKind::kDataSubscribe: return "data.subscribe";
    case EventKind::kDataNotify: return "data.notify";
    case EventKind::kCkptWrite: return "ckpt.write";
    case EventKind::kCkptRestore: return "ckpt.restore";
    case EventKind::kMpiSend: return "mpi.send";
    case EventKind::kMpiRecv: return "mpi.recv";
    case EventKind::kRankDead: return "rank_dead";
    case EventKind::kHeartbeatDeath: return "heartbeat_death";
    case EventKind::kTermToken: return "term.token";
    case EventKind::kShutdown: return "term.shutdown";
    case EventKind::kServerHandle: return "server.handle";
    case EventKind::kRuleCreated: return "rule.created";
    case EventKind::kRuleFired: return "rule.fired";
    case EventKind::kRuleStuck: return "rule.stuck";
    case EventKind::kDatumStuck: return "data.stuck";
    case EventKind::kReqSubmit: return "req.submit";
    case EventKind::kReqBegin: return "req.begin";
    case EventKind::kReqDone: return "req.done";
  }
  return "unknown";
}

const char* kind_category(EventKind k) {
  switch (k) {
    case EventKind::kTaskDispatch:
    case EventKind::kTaskRun:
    case EventKind::kTaskFailed:
    case EventKind::kRequeue: return "task";
    case EventKind::kAdlbPut:
    case EventKind::kAdlbGet:
    case EventKind::kAdlbPark:
    case EventKind::kAdlbGetWait:
    case EventKind::kSteal:
    case EventKind::kHungry:
    case EventKind::kServerHandle: return "adlb";
    case EventKind::kDataSubscribe:
    case EventKind::kDataNotify: return "data";
    case EventKind::kCkptWrite:
    case EventKind::kCkptRestore: return "ckpt";
    case EventKind::kMpiSend:
    case EventKind::kMpiRecv: return "mpi";
    case EventKind::kRankDead:
    case EventKind::kHeartbeatDeath:
    case EventKind::kTermToken:
    case EventKind::kShutdown: return "fault";
    case EventKind::kRuleCreated:
    case EventKind::kRuleFired:
    case EventKind::kRuleStuck: return "engine";
    case EventKind::kDatumStuck: return "data";
    case EventKind::kReqSubmit:
    case EventKind::kReqBegin:
    case EventKind::kReqDone: return "serve";
  }
  return "misc";
}

bool kind_is_busy(EventKind k) {
  // Work evaluation and server message handling are "busy"; a client
  // blocked in Get (kAdlbGetWait) is the definition of idle.
  return k == EventKind::kTaskRun || k == EventKind::kServerHandle ||
         k == EventKind::kCkptWrite || k == EventKind::kCkptRestore;
}

// ---- Tracer ----

void Tracer::init(int rank, size_t capacity) {
  rank_ = rank;
  cap_ = std::max<size_t>(16, capacity);
  count_ = 0;
  buf_.assign(cap_, Event{});
}

std::vector<Event> Tracer::events() const {
  std::vector<Event> out;
  if (cap_ == 0 || count_ == 0) return out;
  const uint64_t n = std::min(count_, cap_);
  out.reserve(static_cast<size_t>(n));
  // Oldest surviving event is at count_ % cap_ once the ring has wrapped.
  const uint64_t start = count_ > cap_ ? count_ % cap_ : 0;
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(buf_[static_cast<size_t>((start + i) % cap_)]);
  }
  return out;
}

// ---- Session ----

Session::Session(int nranks, size_t capacity) {
  tracers_.resize(static_cast<size_t>(nranks));
  for (int r = 0; r < nranks; ++r) tracers_[static_cast<size_t>(r)].init(r, capacity);
}

std::vector<Event> Session::merged() const {
  std::vector<Event> out;
  size_t total = 0;
  for (const auto& t : tracers_) total += t.events().size();
  out.reserve(total);
  for (const auto& t : tracers_) {
    auto ev = t.events();
    out.insert(out.end(), ev.begin(), ev.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) { return x.t < y.t; });
  return out;
}

}  // namespace ilps::obs
