#include "blob/blob.h"

#include "common/strings.h"

namespace ilps::blob {

namespace {
constexpr std::string_view kPrefix = "blob:";
}

std::string Registry::insert(Blob b) {
  uint64_t id = next_++;
  blobs_.emplace_back(id, std::move(b));
  return std::string(kPrefix) + std::to_string(id);
}

Blob& Registry::get(const std::string& handle) {
  if (!str::starts_with(handle, kPrefix)) {
    throw DataError("not a blob handle: \"" + handle + "\"");
  }
  auto id = str::parse_int(handle.substr(kPrefix.size()));
  if (!id) throw DataError("malformed blob handle: \"" + handle + "\"");
  for (auto& [key, blob] : blobs_) {
    if (key == static_cast<uint64_t>(*id)) return blob;
  }
  throw DataError("blob handle not registered: \"" + handle + "\"");
}

bool Registry::release(const std::string& handle) {
  if (!str::starts_with(handle, kPrefix)) return false;
  auto id = str::parse_int(handle.substr(kPrefix.size()));
  if (!id) return false;
  for (auto it = blobs_.begin(); it != blobs_.end(); ++it) {
    if (it->first == static_cast<uint64_t>(*id)) {
      blobs_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace ilps::blob
