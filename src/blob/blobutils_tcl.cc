// The `blobutils` Tcl package: commands over blob handles. This is the
// MiniTcl face of src/blob; Swift leaf functions and BindGen-generated
// wrappers use these to move binary data between the Turbine store and
// native code.
//
// Commands (all take/return handles of the form "blob:N"):
//   blobutils::create_string s          -> handle (bytes of s)
//   blobutils::to_string h              -> string
//   blobutils::zeroes_float n           -> handle (n doubles, zeroed)
//   blobutils::zeroes_int n             -> handle (n int64s, zeroed)
//   blobutils::from_floats list         -> handle
//   blobutils::to_floats h              -> Tcl list of doubles
//   blobutils::from_ints list           -> handle
//   blobutils::to_ints h                -> Tcl list of ints
//   blobutils::get_float h i / set_float h i v
//   blobutils::get_int h i / set_int h i v
//   blobutils::size h                   -> bytes
//   blobutils::float_count h            -> element count as doubles
//   blobutils::release h
//   blobutils::sizeof_float             -> 8
//   blobutils::matrix_get h rows i j / matrix_set h rows i j v
//       (column-major / Fortran order)
#include "blob/blob.h"
#include "common/strings.h"
#include "tcl/interp.h"

namespace ilps::blob {

namespace {

int64_t want_int(const std::string& s, const char* what) {
  auto v = str::parse_int(s);
  if (!v) throw tcl::TclError(std::string("blobutils: expected integer ") + what + ", got \"" + s + "\"");
  return *v;
}

double want_double(const std::string& s, const char* what) {
  auto v = str::parse_double(s);
  if (!v) throw tcl::TclError(std::string("blobutils: expected number ") + what + ", got \"" + s + "\"");
  return *v;
}

size_t checked_index(int64_t i, size_t n) {
  if (i < 0 || static_cast<size_t>(i) >= n) {
    throw tcl::TclError("blobutils: index " + std::to_string(i) + " out of range [0," +
                        std::to_string(n) + ")");
  }
  return static_cast<size_t>(i);
}

}  // namespace

void register_blobutils(tcl::Interp& in, Registry& reg) {
  using Args = std::vector<std::string>;

  in.register_command("blobutils::create_string", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "string");
    return reg.insert(Blob::from_string(a[1]));
  });
  in.register_command("blobutils::to_string", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "handle");
    return reg.get(a[1]).to_string();
  });
  in.register_command("blobutils::zeroes_float", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "count");
    int64_t n = want_int(a[1], "count");
    if (n < 0) throw tcl::TclError("blobutils: negative count");
    return reg.insert(Blob::of_size(static_cast<size_t>(n) * sizeof(double)));
  });
  in.register_command("blobutils::zeroes_int", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "count");
    int64_t n = want_int(a[1], "count");
    if (n < 0) throw tcl::TclError("blobutils: negative count");
    return reg.insert(Blob::of_size(static_cast<size_t>(n) * sizeof(int64_t)));
  });
  in.register_command("blobutils::from_floats", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "list");
    std::vector<double> values;
    for (const auto& e : tcl::list_split(a[1])) values.push_back(want_double(e, "element"));
    return reg.insert(Blob::from_values(std::span<const double>(values)));
  });
  in.register_command("blobutils::to_floats", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "handle");
    std::vector<std::string> out;
    for (double v : reg.get(a[1]).as<const double>()) out.push_back(str::format_double(v));
    return tcl::list_join(out);
  });
  in.register_command("blobutils::from_ints", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "list");
    std::vector<int64_t> values;
    for (const auto& e : tcl::list_split(a[1])) values.push_back(want_int(e, "element"));
    return reg.insert(Blob::from_values(std::span<const int64_t>(values)));
  });
  in.register_command("blobutils::to_ints", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "handle");
    std::vector<std::string> out;
    for (int64_t v : reg.get(a[1]).as<const int64_t>()) out.push_back(std::to_string(v));
    return tcl::list_join(out);
  });
  in.register_command("blobutils::get_float", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "handle index");
    auto view = reg.get(a[1]).as<const double>();
    return str::format_double(view[checked_index(want_int(a[2], "index"), view.size())]);
  });
  in.register_command("blobutils::set_float", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 3, 3, "handle index value");
    auto view = reg.get(a[1]).as<double>();
    view[checked_index(want_int(a[2], "index"), view.size())] = want_double(a[3], "value");
    return std::string();
  });
  in.register_command("blobutils::get_int", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 2, 2, "handle index");
    auto view = reg.get(a[1]).as<const int64_t>();
    return std::to_string(view[checked_index(want_int(a[2], "index"), view.size())]);
  });
  in.register_command("blobutils::set_int", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 3, 3, "handle index value");
    auto view = reg.get(a[1]).as<int64_t>();
    view[checked_index(want_int(a[2], "index"), view.size())] = want_int(a[3], "value");
    return std::string();
  });
  in.register_command("blobutils::size", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "handle");
    return std::to_string(reg.get(a[1]).size());
  });
  in.register_command("blobutils::float_count", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "handle");
    return std::to_string(reg.get(a[1]).as<const double>().size());
  });
  in.register_command("blobutils::release", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 1, 1, "handle");
    return std::string(reg.release(a[1]) ? "1" : "0");
  });
  in.register_command("blobutils::sizeof_float", [](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 0, 0, "");
    return std::to_string(sizeof(double));
  });
  in.register_command("blobutils::matrix_get", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 4, 4, "handle rows i j");
    auto view = reg.get(a[1]).as<const double>();
    int64_t rows = want_int(a[2], "rows");
    int64_t i = want_int(a[3], "i");
    int64_t j = want_int(a[4], "j");
    if (rows <= 0) throw tcl::TclError("blobutils: rows must be positive");
    size_t idx = checked_index(j * rows + i, view.size());
    return str::format_double(view[idx]);
  });
  in.register_command("blobutils::matrix_set", [&reg](tcl::Interp&, Args& a) {
    tcl::check_arity(a, 5, 5, "handle rows i j value");
    auto view = reg.get(a[1]).as<double>();
    int64_t rows = want_int(a[2], "rows");
    int64_t i = want_int(a[3], "i");
    int64_t j = want_int(a[4], "j");
    if (rows <= 0) throw tcl::TclError("blobutils: rows must be positive");
    size_t idx = checked_index(j * rows + i, view.size());
    view[idx] = want_double(a[5], "value");
    return std::string();
  });

  in.package_provide("blobutils", "1.0");
}

}  // namespace ilps::blob
