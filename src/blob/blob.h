// The Swift/T `blob` type: a reference-counted buffer of raw bytes used to
// move bulk binary data (C arrays, Fortran arrays, packed structs) through
// dataflow scripts without string formatting. Mirrors Swift/T's blobutils
// library (§III.B of the paper): SWIG-style bindings see a (pointer,
// length) pair; these helpers do the "simple but myriad" conversions such
// as void* -> double* that SWIG will not do automatically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/error.h"

namespace ilps::blob {

// Shared-ownership byte buffer. Copies are shallow (like Tcl_Obj refcounts
// on blob values); use clone() for a deep copy.
//
// A blob may also be a read-only *view* over shared immutable storage
// (from_view): typically a slice of an ADLB retrieve reply, so bytes flow
// from the data store to a leaf task with zero copies. Reads alias the
// storage; the first mutable access detaches into an owned copy
// (copy-on-write), preserving value semantics.
class Blob {
 public:
  Blob() : data_(std::make_shared<std::vector<std::byte>>()) {}

  // Zero-copy construction over shared immutable bytes.
  static Blob from_view(ser::SharedBytes bytes) {
    Blob b;
    b.data_.reset();
    b.view_ = std::move(bytes);
    return b;
  }

  static Blob of_size(size_t bytes) {
    Blob b;
    b.data_->resize(bytes);
    return b;
  }

  static Blob from_string(std::string_view s) {
    Blob b;
    b.data_->resize(s.size());
    std::memcpy(b.data_->data(), s.data(), s.size());
    return b;
  }

  static Blob from_bytes(std::span<const std::byte> bytes) {
    Blob b;
    b.data_->assign(bytes.begin(), bytes.end());
    return b;
  }

  template <typename T>
  static Blob from_values(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Blob b;
    b.data_->resize(values.size_bytes());
    std::memcpy(b.data_->data(), values.data(), values.size_bytes());
    return b;
  }

  size_t size() const { return data_ ? data_->size() : view_.len; }
  bool empty() const { return size() == 0; }

  std::byte* data() {
    ensure_owned();
    return data_->data();
  }
  const std::byte* data() const { return data_ ? data_->data() : view_.view().data(); }
  std::span<std::byte> bytes() {
    ensure_owned();
    return {data_->data(), data_->size()};
  }
  std::span<const std::byte> bytes() const { return {data(), size()}; }

  std::string to_string() const {
    if (empty()) return {};
    return std::string(reinterpret_cast<const char*>(data()), size());
  }

  Blob clone() const {
    Blob b;
    b.data_->assign(data(), data() + size());
    return b;
  }

  // True while this blob still aliases shared read-only storage (no
  // mutable access has detached it yet).
  bool is_view() const { return data_ == nullptr; }

  // The void* -> T* conversion blobutils exists for. Throws DataError if
  // the buffer size is not a multiple of sizeof(T).
  template <typename T>
  std::span<T> as() {
    check_whole_elements(sizeof(T));
    ensure_owned();
    return {reinterpret_cast<T*>(data_->data()), size() / sizeof(T)};
  }

  template <typename T>
  std::span<const T> as() const {
    check_whole_elements(sizeof(T));
    return {reinterpret_cast<const T*>(data()), size() / sizeof(T)};
  }

  // Identity of the underlying storage; two shallow copies share it.
  const void* storage_id() const {
    return data_ ? static_cast<const void*>(data_.get())
                 : static_cast<const void*>(view_.storage.get());
  }

 private:
  void check_whole_elements(size_t elem) const {
    if (size() % elem != 0) {
      throw DataError("blob of " + std::to_string(size()) + " bytes is not a whole number of " +
                      std::to_string(elem) + "-byte elements");
    }
  }

  // Copy-on-write detach: the view's bytes become an owned buffer. Only
  // this blob detaches; other copies keep aliasing the shared storage.
  void ensure_owned() {
    if (data_) return;
    auto v = view_.view();
    data_ = std::make_shared<std::vector<std::byte>>(v.begin(), v.end());
    view_ = {};
  }

  // Owned mutable storage, or — when null — a read-only view.
  std::shared_ptr<std::vector<std::byte>> data_;
  ser::SharedBytes view_;
};

// A 2-D view over a blob in Fortran (column-major) element order, the
// layout FortWrap-wrapped code expects. Indices are 0-based here; the
// storage order is what distinguishes it from C layout.
template <typename T>
class FortranMatrix {
 public:
  FortranMatrix(Blob blob, size_t rows, size_t cols)
      : blob_(std::move(blob)), rows_(rows), cols_(cols) {
    if (blob_.size() != rows * cols * sizeof(T)) {
      throw DataError("blob size does not match " + std::to_string(rows) + "x" +
                      std::to_string(cols) + " matrix of " + std::to_string(sizeof(T)) +
                      "-byte elements");
    }
  }

  static FortranMatrix zeroes(size_t rows, size_t cols) {
    return FortranMatrix(Blob::of_size(rows * cols * sizeof(T)), rows, cols);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  T& operator()(size_t i, size_t j) { return blob_.as<T>()[index(i, j)]; }
  const T& operator()(size_t i, size_t j) const { return blob_.as<const T>()[index(i, j)]; }

  Blob& blob() { return blob_; }
  const Blob& blob() const { return blob_; }

 private:
  size_t index(size_t i, size_t j) const {
    if (i >= rows_ || j >= cols_) {
      throw DataError("matrix index (" + std::to_string(i) + "," + std::to_string(j) +
                      ") out of range");
    }
    return j * rows_ + i;  // column-major
  }

  Blob blob_;
  size_t rows_;
  size_t cols_;
};

// Registry mapping handle strings ("blob:N") to blobs. Each Turbine worker
// owns one; Tcl-level code manipulates blobs only through handles, exactly
// as Swift/T Tcl code holds SWIG pointer strings.
class Registry {
 public:
  std::string insert(Blob b);
  Blob& get(const std::string& handle);  // throws DataError on bad handle
  bool release(const std::string& handle);
  size_t count() const { return blobs_.size(); }

 private:
  uint64_t next_ = 1;
  std::vector<std::pair<uint64_t, Blob>> blobs_;
};

}  // namespace ilps::blob

// Registered into a MiniTcl interp as the `blobutils` package; see
// blobutils_tcl.cc for the command list.
namespace ilps::tcl {
class Interp;
}
namespace ilps::blob {
void register_blobutils(ilps::tcl::Interp& interp, Registry& registry);
}
