// ilps::serve — a resident service runtime over the ILPS world.
//
// Batch mode (runtime::run_program) builds a world, runs one program, and
// tears everything down: MPI ranks, ADLB servers, Turbine engines, and
// the embedded Python/R interpreters all pay their startup cost per run.
// A service workload — many small independent dataflow programs arriving
// over time — cannot afford that. serve::Service keeps the world resident:
//
//   Service service(cfg);
//   service.enter();                     // start engines/workers/servers
//   auto h = service.submit(source);     // compile-once cached, runs
//   const RequestResult& r = h.wait();   //   concurrently with others
//   service.drain();                     // wait for all in-flight work
//   service.shutdown();                  // quiesce and stop the world
//
// Each submit instantiates a compiled Swift program (parsed and
// swift-verified once, cached by source) with its own datum-id namespace,
// runs it through the dataflow engine concurrently with other in-flight
// requests, and completes a per-request future carrying results or a
// typed error. Admission control bounds the ingress queue with a
// configurable policy (block / reject / shed-oldest); per-request latency
// lands in the serve.request_seconds histogram with serve.* counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/runner.h"
#include "turbine/engine.h"

namespace ilps::serve {

// What submit() does when the in-flight request count reaches
// max_inflight.
enum class AdmissionPolicy {
  kBlock,      // wait until a slot frees (lossless backpressure)
  kReject,     // throw ServeError with kind kOverloaded
  kShedOldest, // evict the oldest still-queued request, then admit
};

class ServeError : public Error {
 public:
  enum Kind {
    kOverloaded,  // admission queue full (kReject), or this request was shed
    kShutdown,    // submit after shutdown()
    kBadRequest,  // request could not be built (e.g. empty program)
  };
  ServeError(Kind kind, const std::string& what) : Error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct ServeConfig {
  // Rank layout and interpreter policy; the resident world adds one
  // ingress rank after the workers. Fault-tolerance fields are ignored
  // (the serve runtime does not restart).
  runtime::Config runtime;

  // Admission control: at most this many requests admitted but not yet
  // completed (queued + running).
  size_t max_inflight = 256;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;

  // ---- live telemetry plane ----

  // Streaming export: when enabled (dir set — defaults honor the
  // ILPS_TELEMETRY_DIR / ILPS_TELEMETRY_INTERVAL_MS env vars), enter()
  // starts a background flusher appending metrics snapshots to
  // <dir>/telemetry.jsonl and completed request traces to
  // <dir>/requests.jsonl while the service runs.
  obs::TelemetryFlusher::Config telemetry = obs::TelemetryFlusher::Config::from_env();

  // Slow-request exemplars: a completed request whose latency meets or
  // exceeds this threshold (seconds) keeps its full result — including
  // the stitched trace when captured — in a bounded exemplar ring
  // (slow_exemplars()) and streams to requests.jsonl even when not
  // sampled. 0 disables. ILPS_SLOW_REQUEST_MS overrides when set.
  double slow_request_seconds = 0;

  // Request-trace capture: when tracing is on (ILPS_TRACE /
  // obs::set_trace_enabled), capture the full cross-rank event trace of
  // every Nth admitted request (1 = all, 0 = none). Captured traces land
  // in RequestResult::trace with a critical-path summary. Per-request
  // retention is bounded (obs::kReqCaptureCap events).
  int64_t trace_sample_every = 1;
};

// Critical-path digest of a captured request trace: what the request
// actually did across the world, and where its latency went.
struct RequestTraceSummary {
  uint64_t events = 0;        // captured events (capped at kReqCaptureCap)
  uint64_t tasks = 0;         // completed task.run spans (engine + worker)
  uint64_t rule_fires = 0;    // dataflow rules released
  uint64_t puts = 0;          // work units accepted by servers
  uint64_t mpi_messages = 0;  // request-attributed sends
  uint64_t mpi_bytes = 0;
  double exec_seconds = 0;    // summed task.run durations
  double queue_seconds = 0;   // submit -> the owner engine's req.begin
  double span_seconds = 0;    // first -> last captured event
};

// The completion record a request's future carries.
struct RequestResult {
  int64_t id = 0;
  turbine::RequestErrorKind kind = turbine::RequestErrorKind::kNone;
  std::string error;  // formatted message when kind != kNone
  bool shed = false;  // evicted by AdmissionPolicy::kShedOldest

  std::vector<std::string> lines;  // the request's own output lines
  std::vector<double> line_times;  // arrival times (s since enter())

  // Deadlock diagnosis (kind == kDeadlock): rules never released, with
  // the unset datums they waited on, symbol-resolved.
  uint64_t unfired_rules = 0;
  std::vector<turbine::StuckRule> stuck;

  // Namespace-GC accounting: datums the request left unclosed / with
  // live subscribers when it completed.
  uint64_t leftover_data = 0;
  uint64_t stuck_datums = 0;

  double latency_seconds = 0;  // submit -> completion

  // Request-scoped trace (empty unless tracing was enabled and this
  // request was sampled — ServeConfig::trace_sample_every): the stitched
  // cross-rank event timeline, time-ordered, plus its digest.
  std::vector<obs::Event> trace;
  RequestTraceSummary trace_summary;

  bool ok() const { return kind == turbine::RequestErrorKind::kNone && !shed; }
};

// Throws the typed exception a failed result encodes (DeadlockError,
// DataError, ScriptError, TaskError, OsError, ServeError, Error); returns
// normally for an ok() result.
void throw_request_error(const RequestResult& r);

namespace detail {
struct RequestEntry;
class Hub;
}  // namespace detail

// A per-request future. Copyable; all copies share the same state. Valid
// after the owning Service is destroyed (the state is reference-counted).
class RequestHandle {
 public:
  RequestHandle() = default;

  int64_t id() const;
  bool valid() const { return entry_ != nullptr; }
  bool done() const;

  // Blocks until the request completes; returns a copy of the result so
  // it outlives the handle (including `submit(...).wait()` on a
  // temporary, where the handle may be the result's last owner).
  RequestResult wait() const;

  // wait() + throw_request_error().
  RequestResult get() const;

 private:
  friend class Service;
  RequestHandle(std::shared_ptr<detail::Hub> hub, std::shared_ptr<detail::RequestEntry> entry)
      : hub_(std::move(hub)), entry_(std::move(entry)) {}

  std::shared_ptr<detail::Hub> hub_;
  std::shared_ptr<detail::RequestEntry> entry_;
};

struct ServiceStats {
  uint64_t admitted = 0;
  uint64_t rejected = 0;   // kReject admissions refused
  uint64_t shed = 0;       // requests evicted by kShedOldest
  uint64_t completed = 0;  // futures completed (ok or failed)
  uint64_t failed = 0;     // completed with an error
  uint64_t inflight = 0;   // admitted, not yet completed (snapshot)
  uint64_t programs_compiled = 0;
  uint64_t program_cache_hits = 0;
  uint64_t slow_requests = 0;    // latency >= ServeConfig::slow_request_seconds
  uint64_t traced_requests = 0;  // completed with a captured trace
  // MiniTcl bytecode layer, harvested from every client rank's context at
  // resident-world teardown (zeros while the world is still up).
  uint64_t tcl_compile_hits = 0;
  uint64_t tcl_compile_misses = 0;
  uint64_t tcl_compile_bailouts = 0;
  uint64_t tcl_units_cached = 0;  // live action-cache entries (LRU-bounded)
};

class Service {
 public:
  explicit Service(ServeConfig cfg);
  ~Service();  // shuts the world down if still running

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Starts the resident world (idempotent). Requests submitted before
  // enter() stay queued and run once the world is up.
  void enter();

  // Compiles (or cache-hits) the Swift source and admits it as a new
  // request. Throws SwiftError on compile/verify errors and ServeError
  // under the kReject policy when the service is overloaded.
  RequestHandle submit(const std::string& swift_source);

  // Blocks until every admitted request has completed.
  void drain();

  // drain() + quiesce and stop the world (idempotent). After shutdown,
  // submit() throws ServeError(kShutdown).
  void shutdown();

  // Live datums across all store shards (includes cached program texts).
  // Requires the world to be running.
  uint64_t datum_count();

  ServiceStats stats() const;

  // Live introspection as one JSON object: uptime, inflight, admission
  // counters, rolling-window latency percentiles (p50/p90/p99/p999 for
  // serve.request_seconds), and per-rank busy-seconds gauges. Cheap and
  // callable from any thread at any time; this is also what the telemetry
  // flusher embeds in each snapshot line and what `ilps --serve-status`
  // renders.
  std::string status_json() const;

  // The most recent slow-request exemplars (bounded ring, oldest first).
  std::vector<RequestResult> slow_exemplars() const;

  bool entered() const;

  // ---- batch mode ----
  // One-shot run through the serve rank bodies: builds the world, runs
  // `program` exactly as the legacy runtime did (same output, stats, and
  // error semantics), and tears the world down. runtime::run_program is a
  // thin wrapper over this. The resident machinery (request namespaces,
  // accounting, admission) stays dormant: a batch world has no ingress
  // rank, so the rank layout and message traffic match the legacy runtime
  // exactly.
  static runtime::RunResult run_batch(const runtime::Config& cfg, const std::string& program);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ilps::serve
