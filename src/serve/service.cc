#include "serve/serve.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "adlb/client.h"
#include "adlb/server.h"
#include "common/sync.h"
#include "common/timer.h"
#include "mpi/comm.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "swift/compiler.h"
#include "turbine/context.h"

namespace ilps::serve {

namespace detail {

// A Swift source compiled once: namespaced MiniTcl proc definitions plus
// the entry proc name. `datum` is the resident store copy (created by the
// ingress rank under request 0, so the namespace GC never sweeps it);
// only the ingress thread reads or writes it.
struct CompiledProgram {
  std::string tcl;
  std::string entry;
  int64_t datum = 0;
};

// Compile-once cache keyed by source text. Each program gets a distinct
// proc namespace ("p<n>:") so its generated procs coexist with every
// other cached program inside the resident interpreters.
class ProgramCache {
 public:
  std::shared_ptr<CompiledProgram> get(const std::string& source) {
    uint64_t ns_id = 0;
    {
      ilps::LockGuard lock(mu_);
      auto it = by_source_.find(source);
      if (it != by_source_.end()) {
        ++hits_;
        return it->second;
      }
      ns_id = next_ns_++;
    }
    // Compile outside mu_: swift::compile is arbitrarily slow, and holding
    // the cache lock across it serialized concurrent submitters of
    // *distinct* programs behind one compile. The namespace id is reserved
    // above so racing first-compiles of different sources never collide.
    const std::string ns = "p" + std::to_string(ns_id) + ":";
    auto prog = std::make_shared<CompiledProgram>();
    prog->tcl = swift::compile(source, ns);  // parse + verify + codegen
    prog->entry = ns + "swift:main";
    ilps::LockGuard lock(mu_);
    auto [it, inserted] = by_source_.emplace(source, prog);
    if (!inserted) {
      // Lost a duplicate-compile race for the same source: adopt the
      // winner so every caller shares one CompiledProgram (and one
      // resident store copy), and count this call as the hit it is.
      ++hits_;
      return it->second;
    }
    ++compiled_;
    return prog;
  }

  uint64_t compiled() const {
    ilps::LockGuard lock(mu_);
    return compiled_;
  }
  uint64_t hits() const {
    ilps::LockGuard lock(mu_);
    return hits_;
  }

 private:
  mutable ilps::Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<CompiledProgram>> by_source_
      ILPS_GUARDED_BY(mu_);
  uint64_t next_ns_ ILPS_GUARDED_BY(mu_) = 0;  // namespace ids, incl. failed compiles
  uint64_t compiled_ ILPS_GUARDED_BY(mu_) = 0;
  uint64_t hits_ ILPS_GUARDED_BY(mu_) = 0;
};

// Every field except the construction-time id/prog/submitted/traced is
// guarded by the owning Hub's mu (a cross-object contract clang's
// analysis cannot express on a free struct; ilps-lint's scope rules and
// the Hub's annotations cover the accesses).
struct RequestEntry {
  int64_t id = 0;
  std::shared_ptr<CompiledProgram> prog;
  double submitted = 0;  // hub-clock time of admission
  bool traced = false;   // trace capture registered for this request
  std::string partial;   // output fragment awaiting its newline
  bool done = false;
  RequestResult result;
};

// A command for the ingress rank, queued by submit()/datum_count()/
// shutdown() and drained inside the world.
struct Command {
  enum Kind { kSubmit, kCount, kStop };
  Kind kind = kSubmit;
  std::shared_ptr<RequestEntry> entry;                   // kSubmit
  std::shared_ptr<std::promise<uint64_t>> count;        // kCount
};

// Formats the per-request stuck-future report (the resident counterpart
// of the runtime's batch deadlock message).
std::string deadlock_message(int64_t req, const turbine::RequestOutcome& out) {
  std::ostringstream s;
  s << "deadlock: request <" << req << "> terminated with " << out.unfired_rules
    << " rule(s) still waiting on unset futures";
  constexpr size_t kMaxShown = 8;
  size_t shown = 0;
  for (const auto& rule : out.stuck) {
    if (shown++ == kMaxShown) {
      s << "\n  ... and " << (out.stuck.size() - kMaxShown) << " more rule(s)";
      break;
    }
    s << "\n  rule <" << rule.id << "> waiting on";
    if (rule.waiting.empty()) s << " unknown inputs";
    for (const auto& input : rule.waiting) {
      s << " ";
      if (!input.name.empty()) {
        s << "\"" << input.name << "\" (line " << input.line << ", datum <" << input.id << ">)";
      } else {
        s << "datum <" << input.id << ">";
      }
    }
  }
  s << "\n  hint: `ilps --lint` reports statically provable deadlocks";
  return s.str();
}

// Digests a stitched (time-ordered) request trace into the critical-path
// summary RequestResult carries: where the latency went and what the
// request actually did across the world.
RequestTraceSummary summarize_trace(const std::vector<obs::Event>& events) {
  RequestTraceSummary s;
  s.events = events.size();
  if (events.empty()) return s;
  double submit_t = 0;
  double begin_t = 0;
  // task.run spans nest per rank (engine locals run inside worker-style
  // loops on the same thread), so match Begin/End with a per-rank stack.
  std::unordered_map<int32_t, std::vector<double>> open_runs;
  for (const obs::Event& e : events) {
    switch (e.kind) {
      case obs::EventKind::kReqSubmit:
        if (submit_t == 0) submit_t = e.t;
        break;
      case obs::EventKind::kReqBegin:
        if (begin_t == 0) begin_t = e.t;
        break;
      case obs::EventKind::kRuleFired:
        ++s.rule_fires;
        break;
      case obs::EventKind::kAdlbPut:
        ++s.puts;
        break;
      case obs::EventKind::kMpiSend:
        ++s.mpi_messages;
        s.mpi_bytes += static_cast<uint64_t>(e.b > 0 ? e.b : 0);
        break;
      case obs::EventKind::kTaskRun: {
        auto& stack = open_runs[e.rank];
        if (e.ph == obs::Phase::kBegin) {
          stack.push_back(e.t);
        } else if (e.ph == obs::Phase::kEnd && !stack.empty()) {
          ++s.tasks;
          s.exec_seconds += e.t - stack.back();
          stack.pop_back();
        }
        break;
      }
      default:
        break;
    }
  }
  if (submit_t > 0 && begin_t > submit_t) s.queue_seconds = begin_t - submit_t;
  s.span_seconds = events.back().t - events.front().t;
  return s;
}

// Shared rendezvous between the submission side (user threads) and the
// world's rank threads. Owns admission state, per-request entries, the
// ingress command queue, and the serve.* metrics. Reference-counted so
// RequestHandles stay valid after the Service is gone.
class Hub {
 public:
  // How many slow-request exemplars the ring retains.
  static constexpr size_t kMaxExemplars = 16;

  Hub(bool echo, double slow_threshold, int64_t sample_every)
      : slow_threshold_(slow_threshold), sample_every_(sample_every), echo_(echo) {
    if (obs::metrics_enabled()) {
      obs::Metrics& m = obs::metrics();
      m_admitted_ = &m.counter("serve.admitted");
      m_rejected_ = &m.counter("serve.rejected");
      m_shed_ = &m.counter("serve.shed");
      m_completed_ = &m.counter("serve.completed");
      m_failed_ = &m.counter("serve.failed");
      m_slow_ = &m.counter("serve.slow_requests");
      m_inflight_ = &m.gauge("serve.inflight");
      m_latency_ = &m.histogram("serve.request_seconds");
      // The rolling-window twin: live p50/p99/p999 over the last minute,
      // memory-bounded no matter how long the service stays up.
      m_latency_window_ = &m.window_histogram("serve.request_seconds");
    }
  }

  ilps::Mutex mu;
  ilps::CondVar cv_done;  // completion: wakes wait()/drain()/kBlock
  ilps::CondVar cv_cmd;   // new command: wakes the ingress rank

  std::deque<Command> commands ILPS_GUARDED_BY(mu);
  std::unordered_map<int64_t, std::shared_ptr<RequestEntry>> inflight ILPS_GUARDED_BY(mu);
  int64_t next_id ILPS_GUARDED_BY(mu) = 1;
  bool stopping ILPS_GUARDED_BY(mu) = false;  // shutdown() called; no further admissions

  uint64_t admitted ILPS_GUARDED_BY(mu) = 0;
  uint64_t rejected ILPS_GUARDED_BY(mu) = 0;
  uint64_t shed ILPS_GUARDED_BY(mu) = 0;
  uint64_t completed ILPS_GUARDED_BY(mu) = 0;
  uint64_t failed ILPS_GUARDED_BY(mu) = 0;
  uint64_t slow ILPS_GUARDED_BY(mu) = 0;    // latency >= slow_threshold_
  uint64_t traced ILPS_GUARDED_BY(mu) = 0;  // completed with a captured trace

  // MiniTcl bytecode-layer totals, deposited by each client rank when the
  // resident world tears down (Context lifetime = world lifetime).
  uint64_t tcl_hits ILPS_GUARDED_BY(mu) = 0;
  uint64_t tcl_misses ILPS_GUARDED_BY(mu) = 0;
  uint64_t tcl_bailouts ILPS_GUARDED_BY(mu) = 0;
  uint64_t tcl_units ILPS_GUARDED_BY(mu) = 0;

  void note_tcl(const tcl::Interp::CompileStats& cs, size_t units) {
    ilps::LockGuard lock(mu);
    tcl_hits += cs.hits;
    tcl_misses += cs.misses;
    tcl_bailouts += cs.bailouts;
    tcl_units += units;
  }

  // Slow-request exemplar ring, oldest first (full results incl. trace).
  std::deque<RequestResult> exemplars ILPS_GUARDED_BY(mu);

  // Streaming export (set by Service::enter when telemetry is enabled;
  // shared so the hub can outlive the Service).
  std::shared_ptr<obs::TelemetryFlusher> flusher ILPS_GUARDED_BY(mu);

  // Service epoch: line_times and latencies count from here. Immutable
  // after construction (elapsed() only reads the start point).
  Timer clock;

  double slow_threshold() const { return slow_threshold_; }

  // Whether this admission should register trace capture.
  bool should_trace(int64_t id) const {
    return sample_every_ > 0 && obs::trace_enabled() && id % sample_every_ == 0;
  }

  // Per-request output sink for every client rank (installed as
  // ContextConfig::serve_output). Splits fragments into lines on the
  // request's own entry; output outside any request goes to stdout only
  // under echo.
  void emit(int64_t req, int rank, const std::string& text) {
    (void)rank;
    ilps::LockGuard lock(mu);
    if (echo_) std::fwrite(text.data(), 1, text.size(), stdout);
    if (req == 0) return;
    auto it = inflight.find(req);
    if (it == inflight.end()) return;
    RequestEntry& e = *it->second;
    e.partial += text;
    size_t pos;
    while ((pos = e.partial.find('\n')) != std::string::npos) {
      e.result.lines.push_back(e.partial.substr(0, pos));
      e.result.line_times.push_back(clock.elapsed());
      e.partial.erase(0, pos + 1);
    }
  }

  // Completion callback from an owner engine (ContextConfig::serve_complete):
  // the accounting proved the request finished and its namespace is GC'd.
  void complete(turbine::RequestOutcome&& out) {
    ilps::LockGuard lock(mu);
    auto it = inflight.find(out.req);
    if (it == inflight.end()) return;  // shed before it ran
    std::shared_ptr<RequestEntry> e = std::move(it->second);
    inflight.erase(it);
    e->result.kind = out.kind;
    e->result.error = out.kind == turbine::RequestErrorKind::kDeadlock
                          ? deadlock_message(out.req, out)
                          : std::move(out.error);
    e->result.unfired_rules = out.unfired_rules;
    e->result.stuck = std::move(out.stuck);
    e->result.leftover_data = out.leftover_data;
    e->result.stuck_datums = out.stuck_datums;
    finish_locked(*e, /*was_failure=*/out.kind != turbine::RequestErrorKind::kNone);
  }

  // Marks every live request failed (the world died under them); called
  // with the world's terminal error so waiters see a cause, not a hang.
  void fail_all(const std::string& why) {
    ilps::LockGuard lock(mu);
    for (auto& [id, e] : inflight) {
      e->result.kind = turbine::RequestErrorKind::kGeneric;
      e->result.error = why;
      finish_locked(*e, /*was_failure=*/true);
    }
    inflight.clear();
    commands.clear();
  }

  // Caller holds mu. Seals the entry's result and publishes metrics.
  void finish_locked(RequestEntry& e, bool was_failure) ILPS_REQUIRES(mu) {
    if (!e.partial.empty()) {
      e.result.lines.push_back(std::move(e.partial));
      e.result.line_times.push_back(clock.elapsed());
      e.partial.clear();
    }
    e.result.latency_seconds = clock.elapsed() - e.submitted;
    e.done = true;
    ++completed;
    if (was_failure) ++failed;
    if (m_completed_ != nullptr) m_completed_->add();
    if (was_failure && m_failed_ != nullptr) m_failed_->add();
    if (m_inflight_ != nullptr) m_inflight_->set(static_cast<double>(inflight.size()));
    if (m_latency_ != nullptr) m_latency_->record(e.result.latency_seconds);
    if (m_latency_window_ != nullptr) m_latency_window_->record(e.result.latency_seconds);
    if (e.traced) {
      // Seal the capture: write the completion mark into the capture
      // buffer first, then deregister and stitch. The rank-local ring gets
      // its own req.done afterwards (post-deregistration, so exactly one
      // copy lands in the capture).
      obs::req_capture_note_off_rank(e.id, obs::EventKind::kReqDone, obs::Phase::kInstant, e.id,
                                     was_failure ? 1 : 0);
      e.result.trace = obs::req_capture_take(e.id);
      e.result.trace_summary = detail::summarize_trace(e.result.trace);
      ++traced;
    }
    {
      obs::RequestScope rscope(e.id);
      obs::instant(obs::EventKind::kReqDone, e.id, was_failure ? 1 : 0);
    }
    const bool is_slow =
        slow_threshold_ > 0 && e.result.latency_seconds >= slow_threshold_;
    if (is_slow) {
      ++slow;
      if (m_slow_ != nullptr) m_slow_->add();
      exemplars.push_back(e.result);
      if (exemplars.size() > kMaxExemplars) exemplars.pop_front();
    }
    if (flusher && (e.traced || is_slow)) {
      obs::TelemetryFlusher::RequestRecord rec;
      rec.id = e.id;
      rec.failed = was_failure;
      rec.slow = is_slow;
      rec.latency_seconds = e.result.latency_seconds;
      rec.events = e.result.trace;
      flusher->enqueue_request(std::move(rec));
    }
    cv_done.notify_all();
  }

  // Metric handles (null when metrics are disabled); resolved once in the
  // constructor and immutable afterwards, so reads need no lock. The
  // pointees are internally synchronized (obs::Counter/Gauge/Histogram).
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_slow_ = nullptr;
  obs::Gauge* m_inflight_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
  obs::WindowHistogram* m_latency_window_ = nullptr;

 private:
  // Immutable after construction: no lock needed.
  double slow_threshold_ = 0;
  int64_t sample_every_ = 1;
  bool echo_ = false;
};

}  // namespace detail

using detail::Command;
using detail::CompiledProgram;
using detail::Hub;
using detail::RequestEntry;

// ---- RequestHandle ----

int64_t RequestHandle::id() const { return entry_ ? entry_->id : 0; }

bool RequestHandle::done() const {
  if (!entry_) return false;
  ilps::LockGuard lock(hub_->mu);
  return entry_->done;
}

RequestResult RequestHandle::wait() const {
  if (!entry_) throw Error("serve: wait on an empty RequestHandle");
  ilps::UniqueLock lock(hub_->mu);
  while (!entry_->done) hub_->cv_done.wait(lock);
  return entry_->result;
}

RequestResult RequestHandle::get() const {
  RequestResult r = wait();
  throw_request_error(r);
  return r;
}

void throw_request_error(const RequestResult& r) {
  if (r.shed) throw ServeError(ServeError::kOverloaded, r.error);
  switch (r.kind) {
    case turbine::RequestErrorKind::kNone:
      return;
    case turbine::RequestErrorKind::kDeadlock:
      throw DeadlockError(r.error);
    case turbine::RequestErrorKind::kData:
      throw DataError(r.error);
    case turbine::RequestErrorKind::kScript:
      throw ScriptError(r.error);
    case turbine::RequestErrorKind::kTask:
      throw TaskError(r.error);
    case turbine::RequestErrorKind::kOs:
      throw OsError(r.error);
    case turbine::RequestErrorKind::kGeneric:
      break;
  }
  throw Error(r.error);
}

// ---- Service ----

struct Service::Impl {
  ServeConfig cfg;
  std::shared_ptr<Hub> hub;
  detail::ProgramCache cache;

  ilps::Mutex lifecycle_mu;  // serializes enter()/shutdown()
  std::thread world_thread ILPS_GUARDED_BY(lifecycle_mu);
  ilps::Atomic<bool> entered{false};
  bool joined ILPS_GUARDED_BY(lifecycle_mu) = false;
  // Terminal failure of the world itself: written only by the world
  // thread, read only after world_thread.join() — synchronized by the
  // join, not by a lock.
  std::exception_ptr world_error;

  void run_world();
  void ingress_loop(adlb::Client& client);
};

// The ingress rank: the one client that is *not* parked in Get while the
// service is up, which is exactly what keeps the quiescence detector from
// shutting the resident world down. It drains the hub's command queue,
// materializes each program's resident copy, and seeds requests onto
// their owner engines.
void Service::Impl::ingress_loop(adlb::Client& client) {
  const int engines = cfg.runtime.engines;
  for (;;) {
    Command cmd;
    {
      ilps::UniqueLock lock(hub->mu);
      while (hub->commands.empty()) hub->cv_cmd.wait(lock);
      cmd = std::move(hub->commands.front());
      hub->commands.pop_front();
    }
    if (cmd.kind == Command::kStop) break;
    if (cmd.kind == Command::kCount) {
      cmd.count->set_value(client.datum_count());
      continue;
    }
    CompiledProgram& prog = *cmd.entry->prog;
    if (prog.datum == 0) {
      // First run of this program: store its compiled text once, under
      // request 0 so the namespace GC never reclaims it. Ranks retrieve
      // and evaluate it lazily (Context::load_program).
      const int64_t id = client.unique();
      client.create(id, adlb::DataType::kString);
      client.store(id, prog.tcl);
      prog.datum = id;
    }
    // The request seed: the owner engine begins the request's accounting
    // and evaluates the entry proc. Targeted, so it ships synchronously;
    // the first server to see it emits the "+1" spawn notice ahead of it.
    adlb::WorkUnit seed;
    seed.type = adlb::kTypeControl;
    seed.target = static_cast<int>((cmd.entry->id - 1) % engines);
    seed.payload = prog.entry;
    seed.req = cmd.entry->id;
    seed.owner = seed.target;
    seed.prog = prog.datum;
    seed.flags = adlb::kUnitReqBegin;
    client.put(seed);
  }
  // Shutdown: park in Get like every other client. Once the in-flight
  // requests drain, all clients are parked with empty queues and the
  // legacy termination detection stops the world.
  while (client.get(adlb::kTypeControl)) {
  }
}

void Service::Impl::run_world() {
  const runtime::Config& rc = cfg.runtime;
  adlb::Config acfg = rc.adlb();
  const int engines = rc.engines;
  const int ingress_rank = rc.engines + rc.workers;

  mpi::World world(ingress_rank + 1 + rc.servers);
  std::shared_ptr<Hub> h = hub;

  auto body = [&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), acfg)) {
      adlb::Server server(comm, acfg, nullptr);
      server.serve();
      return;
    }
    adlb::Client client(comm, acfg);
    if (comm.rank() == ingress_rank) {
      ingress_loop(client);
      return;
    }
    turbine::ContextConfig ccfg;
    ccfg.policy = rc.policy;
    ccfg.restricted_os = rc.restricted_os;
    ccfg.setup_interp = rc.setup_interp;
    ccfg.setup_bindings = rc.setup_bindings;
    ccfg.serve_output = [h](int64_t req, int rank, const std::string& text) {
      h->emit(req, rank, text);
    };
    if (comm.rank() < engines) {
      turbine::Engine engine(client);
      ccfg.serve_complete = [h](turbine::RequestOutcome&& out) { h->complete(std::move(out)); };
      turbine::Context ctx(client, &engine, ccfg);
      ctx.run_engine("");
      h->note_tcl(ctx.interp().compile_stats(), ctx.units_cached());
    } else {
      turbine::Context ctx(client, nullptr, ccfg);
      ctx.run_worker();
      h->note_tcl(ctx.interp().compile_stats(), ctx.units_cached());
    }
  };
  world.run(body);
}

Service::Service(ServeConfig cfg) : impl_(std::make_unique<Impl>()) {
  impl_->cfg = std::move(cfg);
  double slow_s = impl_->cfg.slow_request_seconds;
  if (const char* env = std::getenv("ILPS_SLOW_REQUEST_MS")) {
    const double ms = std::atof(env);
    if (ms > 0) slow_s = ms / 1000.0;
  }
  impl_->hub = std::make_shared<Hub>(impl_->cfg.runtime.echo_output, slow_s,
                                     impl_->cfg.trace_sample_every);
}

Service::~Service() {
  try {
    shutdown();
  } catch (...) {
    // Destructors don't throw; shutdown() reports the same error when
    // called explicitly.
  }
}

bool Service::entered() const { return impl_->entered.load(); }

void Service::enter() {
  ilps::LockGuard lock(impl_->lifecycle_mu);
  if (impl_->entered.load()) return;
  const runtime::Config& rc = impl_->cfg.runtime;
  if (rc.engines < 1) throw Error("serve: at least one engine rank is required");
  if (rc.workers < 1) throw Error("serve: at least one worker rank is required");
  if (rc.servers < 1) throw Error("serve: at least one server rank is required");
  if (impl_->cfg.max_inflight < 1) throw Error("serve: max_inflight must be at least 1");
  if (impl_->cfg.telemetry.enabled()) {
    auto flusher = std::make_shared<obs::TelemetryFlusher>(impl_->cfg.telemetry);
    flusher->set_status_provider([this] { return status_json(); });
    flusher->start();
    ilps::LockGuard hub_lock(impl_->hub->mu);
    impl_->hub->flusher = std::move(flusher);
  }
  Impl* impl = impl_.get();
  impl_->world_thread = std::thread([impl] {
    try {
      impl->run_world();
    } catch (...) {
      impl->world_error = std::current_exception();
      std::string why = "serve: resident world failed";
      try {
        std::rethrow_exception(impl->world_error);
      } catch (const std::exception& e) {
        why = std::string("serve: resident world failed: ") + e.what();
      } catch (...) {
      }
      impl->hub->fail_all(why);
    }
  });
  impl_->entered.store(true);
}

RequestHandle Service::submit(const std::string& swift_source) {
  if (swift_source.empty()) {
    throw ServeError(ServeError::kBadRequest, "serve: submit of an empty program");
  }
  // Compile (or cache-hit) outside the hub lock; SwiftErrors propagate
  // before anything is admitted.
  std::shared_ptr<CompiledProgram> prog = impl_->cache.get(swift_source);

  std::shared_ptr<Hub> hub = impl_->hub;
  ilps::UniqueLock lock(hub->mu);
  if (hub->stopping) throw ServeError(ServeError::kShutdown, "serve: submit after shutdown");
  if (hub->inflight.size() >= impl_->cfg.max_inflight) {
    switch (impl_->cfg.admission) {
      case AdmissionPolicy::kReject: {
        ++hub->rejected;
        if (hub->m_rejected_ != nullptr) hub->m_rejected_->add();
        throw ServeError(ServeError::kOverloaded,
                         "serve: overloaded: " + std::to_string(hub->inflight.size()) +
                             " request(s) in flight (max " +
                             std::to_string(impl_->cfg.max_inflight) + ")");
      }
      case AdmissionPolicy::kBlock: {
        while (!hub->stopping && hub->inflight.size() >= impl_->cfg.max_inflight) {
          hub->cv_done.wait(lock);
        }
        if (hub->stopping) {
          throw ServeError(ServeError::kShutdown, "serve: submit after shutdown");
        }
        break;
      }
      case AdmissionPolicy::kShedOldest: {
        // Evict the oldest request that has not reached the ingress rank
        // yet. Running requests cannot be shed (their work is already in
        // the world), so a fully-running window degrades to kReject.
        auto it = std::find_if(hub->commands.begin(), hub->commands.end(),
                               [](const Command& c) { return c.kind == Command::kSubmit; });
        if (it == hub->commands.end()) {
          ++hub->rejected;
          if (hub->m_rejected_ != nullptr) hub->m_rejected_->add();
          throw ServeError(ServeError::kOverloaded,
                           "serve: overloaded: every in-flight request is already running "
                           "(nothing queued to shed)");
        }
        std::shared_ptr<RequestEntry> victim = it->entry;
        hub->commands.erase(it);
        hub->inflight.erase(victim->id);
        victim->result.shed = true;
        victim->result.error =
            "serve: request <" + std::to_string(victim->id) + "> shed under overload";
        ++hub->shed;
        if (hub->m_shed_ != nullptr) hub->m_shed_->add();
        hub->finish_locked(*victim, /*was_failure=*/true);
        break;
      }
    }
  }
  auto entry = std::make_shared<RequestEntry>();
  entry->id = hub->next_id++;
  entry->prog = std::move(prog);
  entry->submitted = hub->clock.elapsed();
  entry->result.id = entry->id;
  if (hub->should_trace(entry->id)) {
    // Register the request for cross-rank capture before any rank can
    // emit on its behalf, and mark the submit itself (user thread, no
    // attached tracer, hence off-rank).
    entry->traced = true;
    obs::req_capture_begin(entry->id);
    obs::req_capture_note_off_rank(entry->id, obs::EventKind::kReqSubmit, obs::Phase::kInstant,
                                   entry->id);
  }
  hub->inflight.emplace(entry->id, entry);
  ++hub->admitted;
  if (hub->m_admitted_ != nullptr) hub->m_admitted_->add();
  if (hub->m_inflight_ != nullptr) {
    hub->m_inflight_->set(static_cast<double>(hub->inflight.size()));
  }
  Command cmd;
  cmd.kind = Command::kSubmit;
  cmd.entry = entry;
  hub->commands.push_back(std::move(cmd));
  hub->cv_cmd.notify_one();
  return RequestHandle(hub, std::move(entry));
}

void Service::drain() {
  if (!impl_->entered.load()) throw Error("serve: drain called before enter");
  std::shared_ptr<Hub> hub = impl_->hub;
  ilps::UniqueLock lock(hub->mu);
  while (!hub->inflight.empty()) hub->cv_done.wait(lock);
}

void Service::shutdown() {
  ilps::LockGuard lifecycle(impl_->lifecycle_mu);
  std::shared_ptr<Hub> hub = impl_->hub;
  {
    ilps::LockGuard lock(hub->mu);
    if (!hub->stopping) {
      hub->stopping = true;
      // The stop sentinel queues *behind* every admitted request, so the
      // ingress seeds them all before parking; the world then terminates
      // only after they drain (shutdown implies drain).
      Command cmd;
      cmd.kind = Command::kStop;
      hub->commands.push_back(std::move(cmd));
      hub->cv_cmd.notify_one();
      hub->cv_done.notify_all();  // wake kBlock waiters into kShutdown
    }
  }
  if (impl_->entered.load() && !impl_->joined) {
    // Joining under lifecycle_mu is safe: the world thread never takes
    // lifecycle_mu (it only touches hub->mu, which is not held here), and
    // holding it is what makes concurrent shutdown() calls idempotent.
    impl_->world_thread.join();  // ilps-lint: allow(no-blocking-under-lock) -- see above
    impl_->joined = true;
    // Stop the flusher after the world joins so its final snapshot and
    // request drain see the service's terminal state.
    std::shared_ptr<obs::TelemetryFlusher> flusher;
    {
      ilps::LockGuard lock(hub->mu);
      flusher = std::move(hub->flusher);
      hub->flusher.reset();
    }
    if (flusher) flusher->stop();
    if (impl_->world_error) std::rethrow_exception(impl_->world_error);
  }
}

uint64_t Service::datum_count() {
  if (!impl_->entered.load()) throw Error("serve: datum_count called before enter");
  auto promise = std::make_shared<std::promise<uint64_t>>();
  std::future<uint64_t> value = promise->get_future();
  std::shared_ptr<Hub> hub = impl_->hub;
  {
    ilps::LockGuard lock(hub->mu);
    if (hub->stopping) {
      throw ServeError(ServeError::kShutdown, "serve: datum_count after shutdown");
    }
    Command cmd;
    cmd.kind = Command::kCount;
    cmd.count = promise;
    hub->commands.push_back(std::move(cmd));
    hub->cv_cmd.notify_one();
  }
  return value.get();
}

ServiceStats Service::stats() const {
  std::shared_ptr<Hub> hub = impl_->hub;
  ServiceStats s;
  {
    ilps::LockGuard lock(hub->mu);
    s.admitted = hub->admitted;
    s.rejected = hub->rejected;
    s.shed = hub->shed;
    s.completed = hub->completed;
    s.failed = hub->failed;
    s.inflight = hub->inflight.size();
    s.slow_requests = hub->slow;
    s.traced_requests = hub->traced;
    s.tcl_compile_hits = hub->tcl_hits;
    s.tcl_compile_misses = hub->tcl_misses;
    s.tcl_compile_bailouts = hub->tcl_bailouts;
    s.tcl_units_cached = hub->tcl_units;
  }
  s.programs_compiled = impl_->cache.compiled();
  s.program_cache_hits = impl_->cache.hits();
  return s;
}

std::vector<RequestResult> Service::slow_exemplars() const {
  std::shared_ptr<Hub> hub = impl_->hub;
  ilps::LockGuard lock(hub->mu);
  return {hub->exemplars.begin(), hub->exemplars.end()};
}

std::string Service::status_json() const {
  std::shared_ptr<Hub> hub = impl_->hub;
  // Snapshot the hub under its lock, then format and query the metrics
  // registry with the lock released (the telemetry flusher calls this
  // from its own thread; keep the lock scopes disjoint).
  uint64_t admitted, rejected, shed, completed, failed, slow, traced, inflight;
  uint64_t tcl_hits, tcl_misses, tcl_bailouts, tcl_units;
  double uptime;
  std::shared_ptr<obs::TelemetryFlusher> flusher;
  {
    ilps::LockGuard lock(hub->mu);
    admitted = hub->admitted;
    rejected = hub->rejected;
    shed = hub->shed;
    completed = hub->completed;
    failed = hub->failed;
    slow = hub->slow;
    traced = hub->traced;
    inflight = hub->inflight.size();
    tcl_hits = hub->tcl_hits;
    tcl_misses = hub->tcl_misses;
    tcl_bailouts = hub->tcl_bailouts;
    tcl_units = hub->tcl_units;
    uptime = hub->clock.elapsed();
    flusher = hub->flusher;
  }
  std::ostringstream s;
  s << "{\"uptime_s\":" << obs::json_num(uptime);
  s << ",\"inflight\":" << inflight;
  s << ",\"admitted\":" << admitted << ",\"rejected\":" << rejected << ",\"shed\":" << shed;
  s << ",\"completed\":" << completed << ",\"failed\":" << failed;
  s << ",\"slow_requests\":" << slow << ",\"traced_requests\":" << traced;
  s << ",\"programs_compiled\":" << impl_->cache.compiled();
  s << ",\"program_cache_hits\":" << impl_->cache.hits();
  s << ",\"tcl\":{\"compile_hits\":" << tcl_hits << ",\"compile_misses\":" << tcl_misses
    << ",\"compile_bailouts\":" << tcl_bailouts << ",\"units_cached\":" << tcl_units << "}";
  if (obs::metrics_enabled()) {
    // Rolling-window latency percentiles: what the service is doing *now*,
    // not since boot.
    obs::WindowHistogram& w = obs::metrics().window_histogram("serve.request_seconds");
    const obs::WindowHistogram::Snapshot snap = w.snapshot();
    s << ",\"window\":{\"window_s\":" << obs::json_num(w.window_seconds());
    s << ",\"count\":" << snap.count << ",\"sum\":" << obs::json_num(snap.sum);
    s << ",\"p50\":" << obs::json_num(snap.p50) << ",\"p90\":" << obs::json_num(snap.p90);
    s << ",\"p99\":" << obs::json_num(snap.p99) << ",\"p999\":" << obs::json_num(snap.p999);
    s << "}";
    // Per-rank utilization: cumulative busy-seconds gauges set by the
    // engine, worker, and server loops; consumers diff successive
    // snapshots against uptime for live utilization.
    const int engines = impl_->cfg.runtime.engines;
    const int workers = impl_->cfg.runtime.workers;
    const int ingress = engines + workers;
    s << ",\"ranks\":[";
    bool first = true;
    for (const auto& [name, value] : obs::metrics().gauges()) {
      constexpr const char* kPrefix = "rank.busy_seconds.r";
      if (name.rfind(kPrefix, 0) != 0) continue;
      const int rank = std::atoi(name.c_str() + std::char_traits<char>::length(kPrefix));
      const char* role = rank < engines  ? "engine"
                         : rank < ingress ? "worker"
                         : rank == ingress ? "ingress"
                                           : "server";
      if (!first) s << ",";
      first = false;
      s << "{\"rank\":" << rank << ",\"role\":\"" << role
        << "\",\"busy_s\":" << obs::json_num(value) << "}";
    }
    s << "]";
  }
  if (flusher) {
    s << ",\"telemetry\":{\"snapshots\":" << flusher->snapshots_written()
      << ",\"requests\":" << flusher->requests_written()
      << ",\"dropped\":" << flusher->requests_dropped() << "}";
  }
  s << "}";
  return s.str();
}

// ---- batch mode ----

runtime::RunResult Service::run_batch(const runtime::Config& cfg, const std::string& program) {
  // The one-shot counterpart of the resident world. This mirrors the
  // legacy runtime loop exactly: no ingress rank, no request tagging, no
  // admission — the program's datums live in namespace 0, errors
  // propagate as exceptions, and termination is the plain quiescence
  // detection, so existing programs keep their output, stats, and error
  // semantics to the message.
  const bool has_main = program.find("proc swift:main") != std::string::npos;
  if (cfg.engines < 1) throw Error("runtime: at least one engine rank is required");
  if (cfg.workers < 1) throw Error("runtime: at least one worker rank is required");
  if (cfg.servers < 1) throw Error("runtime: at least one server rank is required");

  adlb::Config acfg = cfg.adlb();

  runtime::RunResult result;
  ilps::Mutex mu;  // guards result + pending across rank threads
  std::string pending;  // partial line accumulator across emits
  Timer timer;

  auto sink = [&](int rank, const std::string& text) {
    (void)rank;
    ilps::LockGuard lock(mu);
    if (cfg.echo_output) std::fwrite(text.data(), 1, text.size(), stdout);
    pending += text;
    size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      result.lines.push_back(pending.substr(0, pos));
      result.line_times.push_back(timer.elapsed());
      pending.erase(0, pos + 1);
    }
  };
  auto body = [&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), acfg)) {
      adlb::Server server(comm, acfg, nullptr);
      server.serve();
      ilps::LockGuard lock(mu);
      const adlb::ServerStats& s = server.stats();
      result.server_stats.puts += s.puts;
      result.server_stats.gets += s.gets;
      result.server_stats.matches += s.matches;
      result.server_stats.forwards += s.forwards;
      result.server_stats.hungry_notices += s.hungry_notices;
      result.server_stats.batches_sent += s.batches_sent;
      result.server_stats.units_rebalanced += s.units_rebalanced;
      result.server_stats.steal_batches += s.steal_batches;
      result.server_stats.steal_batch_units += s.steal_batch_units;
      result.server_stats.notifications += s.notifications;
      result.server_stats.data_ops += s.data_ops;
      result.server_stats.tokens += s.tokens;
      result.server_stats.leftover_data += s.leftover_data;
      result.server_stats.stuck_datums += s.stuck_datums;
      result.server_stats.requeues += s.requeues;
      result.server_stats.task_failures += s.task_failures;
      result.server_stats.heartbeat_deaths += s.heartbeat_deaths;
      result.server_stats.checkpoints += s.checkpoints;
      result.server_stats.replay_skips += s.replay_skips;
      return;
    }

    adlb::Client client(comm, acfg);
    turbine::ContextConfig ccfg;
    ccfg.policy = cfg.policy;
    ccfg.restricted_os = cfg.restricted_os;
    ccfg.output = sink;
    ccfg.setup_interp = cfg.setup_interp;
    ccfg.setup_bindings = cfg.setup_bindings;

    if (comm.rank() < cfg.engines) {
      turbine::Engine engine(client);
      turbine::Context ctx(client, &engine, ccfg);
      std::string to_run;
      if (has_main) {
        ctx.interp().eval(program);
        if (comm.rank() == 0) to_run = "swift:main";
      } else if (comm.rank() == 0) {
        to_run = program;
      }
      size_t unfired = ctx.run_engine(to_run);
      std::vector<turbine::StuckRule> stuck;
      if (unfired > 0) {
        stuck = engine.stuck_report();
        for (const auto& rule : stuck) {
          obs::instant(obs::EventKind::kRuleStuck, rule.id,
                       static_cast<int64_t>(rule.waiting.size()));
        }
      }
      ilps::LockGuard lock(mu);
      result.unfired_rules += unfired;
      for (auto& rule : stuck) result.stuck.push_back(std::move(rule));
      const turbine::EngineStats& es = engine.stats();
      result.engine_stats.rules_created += es.rules_created;
      result.engine_stats.rules_fired += es.rules_fired;
      result.engine_stats.rules_fired_immediately += es.rules_fired_immediately;
      result.engine_stats.notifications += es.notifications;
      result.engine_stats.subscribes += es.subscribes;
      const turbine::WorkerStats& ws = ctx.stats();
      result.worker_stats.tasks += ws.tasks;
      result.worker_stats.python_evals += ws.python_evals;
      result.worker_stats.r_evals += ws.r_evals;
      result.worker_stats.app_execs += ws.app_execs;
      result.worker_stats.interpreter_resets += ws.interpreter_resets;
      result.cache_stats += client.cache_stats();
      result.pipeline_stats += client.pipeline_stats();
      const tcl::Interp::CompileStats& cs = ctx.interp().compile_stats();
      result.tcl_stats.hits += cs.hits;
      result.tcl_stats.misses += cs.misses;
      result.tcl_stats.bailouts += cs.bailouts;
      result.tcl_units_cached += ctx.units_cached();
    } else {
      turbine::Context ctx(client, nullptr, ccfg);
      if (has_main) ctx.interp().eval(program);
      ctx.run_worker();
      ilps::LockGuard lock(mu);
      const turbine::WorkerStats& ws = ctx.stats();
      result.worker_stats.tasks += ws.tasks;
      result.worker_stats.python_evals += ws.python_evals;
      result.worker_stats.r_evals += ws.r_evals;
      result.worker_stats.app_execs += ws.app_execs;
      result.worker_stats.interpreter_resets += ws.interpreter_resets;
      result.cache_stats += client.cache_stats();
      result.pipeline_stats += client.pipeline_stats();
      const tcl::Interp::CompileStats& cs = ctx.interp().compile_stats();
      result.tcl_stats.hits += cs.hits;
      result.tcl_stats.misses += cs.misses;
      result.tcl_stats.bailouts += cs.bailouts;
      result.tcl_units_cached += ctx.units_cached();
    }
  };
  mpi::World world(cfg.total_ranks());
  try {
    world.run(body);
  } catch (const CommError& e) {
    // Servers signal unrecoverable conditions by aborting the world with
    // a marker; classify the resulting CommError into the typed errors
    // callers key off.
    const std::string msg = e.what();
    if (msg.find("ilps-ft-restart:") != std::string::npos) throw RestartError(msg);
    if (msg.find("ilps-task-failed:") != std::string::npos) throw TaskError(msg);
    throw;
  }
  result.elapsed_seconds = timer.elapsed();
  result.traffic = world.stats();
  if (const obs::Session* session = world.obs_session()) {
    result.trace = session->merged();
  }
  if (!pending.empty()) {
    result.lines.push_back(pending);
    result.line_times.push_back(result.elapsed_seconds);
    pending.clear();
  }
  return result;
}

}  // namespace ilps::serve
