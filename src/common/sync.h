// Annotated synchronization primitives for the ILPS runtime.
//
// Every mutex, condition variable, and lock scope in src/ goes through
// the wrappers in this header instead of <mutex> directly. The wrappers
// carry Clang thread-safety capability annotations, so a clang build
// with `-Wthread-safety -Werror=thread-safety` (the clang-thread-safety
// CI job) proves at compile time that every ILPS_GUARDED_BY field is
// only touched with its mutex held and that every ILPS_REQUIRES
// contract is met at each call site. Under gcc the ILPS_* macros expand
// to nothing and the wrappers compile down to their std counterparts.
//
// Companion checks that the type system cannot express live in
// tools/ilps_lint.py (blocking transport calls under a lock, raw
// memory-order sites without an `// ordering:` justification, raw
// std::mutex/std::atomic declarations outside src/common, lock-order
// cycles). docs/concurrency.md explains the whole regime.
//
// Conventions enforced here:
//
//  - ilps::CondVar deliberately has no predicate-taking wait overloads.
//    A predicate lambda is analyzed by clang as a separate function
//    that does not hold the lock, so guarded reads inside it would
//    need escape hatches. Write the loop out instead:
//
//        UniqueLock lock(mu);
//        while (!ready) cv.wait(lock);   // guarded read, lock held
//
//  - Stats counters that tolerate relaxed ordering use RelaxedCounter
//    (the "blessed wrapper": monotonic, no ordering obligations to any
//    other memory). Atomics that participate in an ordering protocol
//    are declared as ilps::Atomic<T> and every non-seq_cst operation
//    carries an adjacent `// ordering:` comment saying which
//    happens-before edge it provides (ilps-lint enforces this).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

// ---- Clang thread-safety attribute macros ------------------------------
//
// Gated on __clang__ so the gcc tier-1 build sees plain classes; the
// clang-thread-safety CI job sees the full capability analysis.
#if defined(__clang__) && defined(__has_attribute)
#define ILPS_TSA(x) __attribute__((x))
#else
#define ILPS_TSA(x)  // no-op outside clang
#endif

#define ILPS_CAPABILITY(x) ILPS_TSA(capability(x))
#define ILPS_SCOPED_CAPABILITY ILPS_TSA(scoped_lockable)
#define ILPS_GUARDED_BY(x) ILPS_TSA(guarded_by(x))
#define ILPS_PT_GUARDED_BY(x) ILPS_TSA(pt_guarded_by(x))
#define ILPS_ACQUIRED_BEFORE(...) ILPS_TSA(acquired_before(__VA_ARGS__))
#define ILPS_ACQUIRED_AFTER(...) ILPS_TSA(acquired_after(__VA_ARGS__))
#define ILPS_REQUIRES(...) ILPS_TSA(requires_capability(__VA_ARGS__))
#define ILPS_ACQUIRE(...) ILPS_TSA(acquire_capability(__VA_ARGS__))
#define ILPS_RELEASE(...) ILPS_TSA(release_capability(__VA_ARGS__))
#define ILPS_TRY_ACQUIRE(...) ILPS_TSA(try_acquire_capability(__VA_ARGS__))
#define ILPS_EXCLUDES(...) ILPS_TSA(locks_excluded(__VA_ARGS__))
#define ILPS_ASSERT_CAPABILITY(x) ILPS_TSA(assert_capability(x))
#define ILPS_RETURN_CAPABILITY(x) ILPS_TSA(lock_returned(x))
#define ILPS_NO_TSA ILPS_TSA(no_thread_safety_analysis)

namespace ilps {

class CondVar;
class UniqueLock;

// A std::mutex carrying the "mutex" capability. Prefer LockGuard /
// UniqueLock scopes; call lock()/unlock() directly only when a scope
// object cannot express the lifetime (and the analysis will still hold
// you to balanced acquire/release).
class ILPS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ILPS_ACQUIRE() { mu_.lock(); }
  void unlock() ILPS_RELEASE() { mu_.unlock(); }
  bool try_lock() ILPS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For code paths the analysis cannot follow (e.g. a callback invoked
  // by a function documented to hold the lock): states the capability
  // is held without acquiring it.
  void assert_held() const ILPS_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex mu_;
};

// RAII lock scope over an ilps::Mutex; never unlocks early.
class ILPS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ILPS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() ILPS_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

// RAII lock scope that supports CondVar waits and explicit
// unlock()/lock() windows (e.g. dropping the lock around file I/O).
class ILPS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ILPS_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() ILPS_RELEASE() {}  // releases iff still held

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ILPS_ACQUIRE() { lock_.lock(); }
  void unlock() ILPS_RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable bound to ilps::UniqueLock. The capability stays
// "held" across a wait from the analysis' point of view (the wait
// re-acquires before returning), matching how callers reason about the
// surrounding while loop. No predicate overloads — see file header.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// The one blessed way to declare an atomic outside src/common
// (ilps-lint rejects raw std::atomic declarations elsewhere). Using the
// alias does not waive the ordering rule: every explicit relaxed /
// acquire / release operation still needs its `// ordering:` comment.
template <typename T>
using Atomic = std::atomic<T>;

// Blessed relaxed stats counter: a monotonic event count with no
// ordering relationship to any other memory. Readers may observe a
// slightly stale value; that is the contract (metrics, pool hit rates,
// wakeup suppression tallies). Use ilps::Atomic + explicit orders +
// `// ordering:` comments for anything a protocol depends on.
class RelaxedCounter {
 public:
  constexpr RelaxedCounter(uint64_t init = 0) : v_(init) {}
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  void add(uint64_t n = 1) {
    // ordering: pure event tally; no reader infers anything about other
    // memory from this value, so relaxed is sufficient.
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void store(uint64_t v) {
    // ordering: reset/absolute set of a tally; same contract as add().
    v_.store(v, std::memory_order_relaxed);
  }
  uint64_t load() const {
    // ordering: stale reads are acceptable by contract.
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> v_;
};

}  // namespace ilps

// ---- Global lock hierarchy --------------------------------------------
//
// Declared ordering edges (outer first). ilps-lint parses these lines
// together with in-source ILPS_ACQUIRED_BEFORE/AFTER attributes, builds
// the directed graph, and fails on any cycle. Keep this table in sync
// with docs/concurrency.md, which explains each edge.
//
// ILPS_LOCK_ORDER: serve.lifecycle_mu < serve.hub_mu
// ILPS_LOCK_ORDER: serve.hub_mu < obs.capture_mu
// ILPS_LOCK_ORDER: serve.hub_mu < obs.telemetry_mu
// ILPS_LOCK_ORDER: serve.hub_mu < obs.registry_mu
// ILPS_LOCK_ORDER: serve.cache_mu < obs.registry_mu
// ILPS_LOCK_ORDER: obs.telemetry_mu < obs.registry_mu
// ILPS_LOCK_ORDER: mpi.lane_mu < mpi.wake_mu
// ILPS_LOCK_ORDER: obs.registry_mu < common.log_mu
// ILPS_LOCK_ORDER: mpi.wake_mu < common.log_mu
