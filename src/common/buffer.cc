// buffer.h is header-only; this TU anchors the library and holds nothing
// else on purpose.
#include "common/buffer.h"
