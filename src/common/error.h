// Error types shared by all ILPS modules.
//
// ILPS uses exceptions for programming and protocol errors (malformed
// scripts, double-store of a future, ...) and plain status returns for
// expected control flow (e.g. ADLB Get observing shutdown).
#pragma once

#include <stdexcept>
#include <string>

namespace ilps {

// Base class for all ILPS errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A user script (Swift, Tcl, Python, R) is malformed or failed at runtime.
class ScriptError : public Error {
 public:
  explicit ScriptError(const std::string& what) : Error(what) {}
};

// The ADLB/Turbine data store was used incorrectly (double store,
// refcount underflow, type mismatch, unknown id).
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

// A messaging-layer invariant was violated (bad rank, reserved tag, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

// The host OS refused an operation (e.g. fork on a restricted system).
class OsError : public Error {
 public:
  explicit OsError(const std::string& what) : Error(what) {}
};

// A leaf task failed (worker eval threw, or its retry budget ran out).
// Carries rank and task id in the message so failures are attributable.
class TaskError : public Error {
 public:
  explicit TaskError(const std::string& what) : Error(what) {}
};

// The run cannot continue in place (engine rank died, every worker died)
// and must be restarted — from the latest checkpoint if one exists.
class RestartError : public Error {
 public:
  explicit RestartError(const std::string& what) : Error(what) {}
};

// The program terminated with dataflow rules still waiting on unset
// futures (a deadlock). The message carries the engine's stuck-future
// report: each pending rule with the datum ids — and, when the compiler's
// symbol map knows them, source names and lines — it is waiting on.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

}  // namespace ilps
