#include "common/log.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/sync.h"
#include "common/timer.h"

namespace ilps::log {

namespace {

Level initial_level() {
  const char* env = std::getenv("ILPS_LOG");
  if (env == nullptr) return Level::kOff;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  return Level::kOff;
}

ilps::Atomic<Level> g_level{initial_level()};
// Serializes stderr writes only; no fields are guarded by it.
ilps::Mutex g_mutex;
thread_local int t_rank = -1;

// flush-on-warn rate limit: a hot warning inside the data plane must not
// serialize every rank thread behind fflush. Warnings flush at most once
// per interval; errors always flush.
ilps::Atomic<int64_t> g_last_flush_us{-1000000};
constexpr int64_t kFlushIntervalUs = 50000;

char letter(Level level) {
  switch (level) {
    case Level::kDebug: return 'D';
    case Level::kInfo: return 'I';
    case Level::kWarn: return 'W';
    case Level::kError: return 'E';
    case Level::kOff: return '?';
  }
  return '?';
}

}  // namespace

namespace detail {
thread_local int64_t t_request = 0;
}  // namespace detail

Level level() {
  // ordering: relaxed — the level is an independent configuration cell;
  // no other memory is published through it.
  return g_level.load(std::memory_order_relaxed);
}

void set_level(Level level) {
  // ordering: relaxed — see level(); a late level change is acceptable.
  g_level.store(level, std::memory_order_relaxed);
}

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

namespace {

bool should_flush(Level level) {
  if (level >= Level::kError) return true;
  if (level < Level::kWarn) return false;
  const int64_t now = static_cast<int64_t>(ilps::wtime() * 1e6);
  // ordering: relaxed — the rate-limit stamp guards nothing but itself;
  // losing the CAS race just means another thread flushes instead.
  int64_t last = g_last_flush_us.load(std::memory_order_relaxed);
  while (now - last >= kFlushIntervalUs) {
    // ordering: relaxed — same single-cell contract as the load above.
    if (g_last_flush_us.compare_exchange_weak(last, now, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void write(Level level, const std::string& message) {
  const int64_t req = thread_request();
  char prefix[96];
  if (t_rank >= 0 && req != 0) {
    std::snprintf(prefix, sizeof prefix, "[ilps %.3fs r%d req%lld %c]", ilps::wtime(), t_rank,
                  static_cast<long long>(req), letter(level));
  } else if (t_rank >= 0) {
    std::snprintf(prefix, sizeof prefix, "[ilps %.3fs r%d %c]", ilps::wtime(), t_rank,
                  letter(level));
  } else if (req != 0) {
    std::snprintf(prefix, sizeof prefix, "[ilps %.3fs req%lld %c]", ilps::wtime(),
                  static_cast<long long>(req), letter(level));
  } else {
    std::snprintf(prefix, sizeof prefix, "[ilps %.3fs %c]", ilps::wtime(), letter(level));
  }
  const bool flush = should_flush(level);
  ilps::LockGuard lock(g_mutex);
  std::fprintf(stderr, "%s %s\n", prefix, message.c_str());
  if (flush) std::fflush(stderr);
}

}  // namespace ilps::log
