#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/timer.h"

namespace ilps::log {

namespace {

Level initial_level() {
  const char* env = std::getenv("ILPS_LOG");
  if (env == nullptr) return Level::kOff;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  return Level::kOff;
}

std::atomic<Level> g_level{initial_level()};
std::mutex g_mutex;
thread_local int t_rank = -1;

char letter(Level level) {
  switch (level) {
    case Level::kDebug: return 'D';
    case Level::kInfo: return 'I';
    case Level::kWarn: return 'W';
    case Level::kError: return 'E';
    case Level::kOff: return '?';
  }
  return '?';
}

}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

void set_thread_rank(int rank) { t_rank = rank; }

int thread_rank() { return t_rank; }

void write(Level level, const std::string& message) {
  char prefix[64];
  if (t_rank >= 0) {
    std::snprintf(prefix, sizeof prefix, "[ilps %.3fs r%d %c]", ilps::wtime(), t_rank,
                  letter(level));
  } else {
    std::snprintf(prefix, sizeof prefix, "[ilps %.3fs %c]", ilps::wtime(), letter(level));
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s %s\n", prefix, message.c_str());
  if (level >= Level::kWarn) std::fflush(stderr);
}

}  // namespace ilps::log
