#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ilps::log {

namespace {

Level initial_level() {
  const char* env = std::getenv("ILPS_LOG");
  if (env == nullptr) return Level::kOff;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  return Level::kOff;
}

std::atomic<Level> g_level{initial_level()};
std::mutex g_mutex;

const char* name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

void write(Level level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[ilps %s] %s\n", name(level), message.c_str());
}

}  // namespace ilps::log
