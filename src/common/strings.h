// Small string utilities shared by the interpreters and the Swift
// front end. All parsing here is strict: numeric conversions succeed only
// if the whole trimmed token is consumed, which is what Tcl's and Swift's
// type coercions require.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ilps::str {

std::string_view trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

// Splits on a single separator character; adjacent separators yield empty
// fields (like Tcl's `split`).
std::vector<std::string> split(std::string_view s, char sep);

// Splits on runs of whitespace; never yields empty fields.
std::vector<std::string> split_ws(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

// Strict numeric parses: the entire trimmed input must be consumed.
// parse_int accepts decimal, 0x hex and optional sign.
std::optional<int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

// True if the string parses as an integer or a double.
bool is_numeric(std::string_view s);

// Formats a double the way Tcl and Swift print them: integral values keep
// a trailing ".0", others use shortest round-trip-ish %.17g trimmed.
std::string format_double(double v);

// printf-style formatting restricted to the conversions the interpreters
// support: %d %i %f %e %g %s %x %X %o %c %% with width/precision/flags.
// `args` are raw strings converted per conversion; throws ilps::ScriptError
// on a malformed spec or non-numeric argument to a numeric conversion.
std::string printf_format(std::string_view spec, const std::vector<std::string>& args);

// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

}  // namespace ilps::str
