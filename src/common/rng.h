// Deterministic, per-instance random number generation. ILPS never uses
// global RNG state: every component that needs randomness (steal target
// selection, workload generators, MiniPy's random module) owns an Rng
// seeded explicitly, so whole-program runs are reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace ilps {

// xoshiro256** by Blackman & Vigna (public domain reference construction),
// chosen over std::mt19937 for speed and tiny state; statistical quality is
// ample for load balancing and synthetic workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t next_below(uint64_t bound) { return next_u64() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Pareto-distributed sample with scale 1 and the given shape; used to
  // model heavy-tailed task durations.
  double next_pareto(double shape) {
    double u = next_double();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return 1.0 / __builtin_pow(1.0 - u, 1.0 / shape);
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace ilps
