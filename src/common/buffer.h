// Byte-buffer serialization used for every message that crosses a rank
// boundary. Ranks in ilps::mpi are threads, but the programming model is
// distributed memory: only bytes produced by a Writer and consumed by a
// Reader may travel between ranks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace ilps::ser {

// Appends fixed-width little-endian scalars, length-prefixed strings and
// byte spans to a growable buffer.
class Writer {
 public:
  Writer() = default;

  // Adopts an existing (possibly recycled) buffer: contents are discarded
  // but capacity is kept, so pooled buffers serialize without allocating.
  explicit Writer(std::vector<std::byte> buf) : buf_(std::move(buf)) { buf_.clear(); }

  void put_i32(int32_t v) { put_raw(&v, sizeof v); }
  void put_u32(uint32_t v) { put_raw(&v, sizeof v); }
  void put_i64(int64_t v) { put_raw(&v, sizeof v); }
  void put_u64(uint64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }
  void put_u8(uint8_t v) { put_raw(&v, sizeof v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_str(std::string_view s) {
    put_u64(s.size());
    put_raw(s.data(), s.size());
  }

  void put_bytes(std::span<const std::byte> b) {
    put_u64(b.size());
    put_raw(b.data(), b.size());
  }

  // Hands the accumulated bytes to the caller; the writer is left empty.
  std::vector<std::byte> take() { return std::move(buf_); }

  const std::vector<std::byte>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void put_raw(const void* p, size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::byte> buf_;
};

// Consumes a byte span produced by Writer. Throws ilps::Error on underrun,
// which indicates a protocol bug, not bad user input.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  int32_t get_i32() { return get_raw<int32_t>(); }
  uint32_t get_u32() { return get_raw<uint32_t>(); }
  int64_t get_i64() { return get_raw<int64_t>(); }
  uint64_t get_u64() { return get_raw<uint64_t>(); }
  double get_f64() { return get_raw<double>(); }
  uint8_t get_u8() { return get_raw<uint8_t>(); }
  bool get_bool() { return get_u8() != 0; }

  std::string get_str() {
    uint64_t n = get_u64();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::byte> get_bytes() {
    uint64_t n = get_u64();
    check(n);
    std::vector<std::byte> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                               data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  bool at_end() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  // Byte offset of the next read. Together with skip(), lets a caller
  // record where a field sits inside the underlying buffer so the bytes
  // can later be aliased (SharedBytes) instead of copied out.
  size_t position() const { return pos_; }

  void skip(uint64_t n) {
    check(n);
    pos_ += n;
  }

 private:
  template <typename T>
  T get_raw() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void check(uint64_t n) const {
    if (pos_ + n > data_.size()) {
      throw Error("serialization underrun: need " + std::to_string(n) +
                  " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

// A shared immutable view into reference-counted byte storage: typically
// an [offset, offset+len) slice of a transport reply buffer whose vector
// was moved into the shared_ptr wholesale. Several views may alias one
// storage block at different offsets (e.g. the entries of a batched
// multi-retrieve reply), so a message buffer becomes long-lived data
// without a copy. Copying a SharedBytes copies the view, never the bytes.
struct SharedBytes {
  std::shared_ptr<const std::vector<std::byte>> storage;
  size_t offset = 0;
  size_t len = 0;

  bool valid() const { return storage != nullptr; }
  size_t size() const { return len; }

  std::span<const std::byte> view() const {
    if (!storage) return {};
    return {storage->data() + offset, len};
  }

  std::string to_string() const {
    auto v = view();
    if (v.empty()) return {};
    return std::string(reinterpret_cast<const char*>(v.data()), v.size());
  }

  // Wraps a whole buffer (used when the bytes were copied fresh rather
  // than sliced out of a larger message).
  static SharedBytes own(std::vector<std::byte> bytes) {
    auto storage = std::make_shared<const std::vector<std::byte>>(std::move(bytes));
    const size_t n = storage->size();
    return {std::move(storage), 0, n};
  }

  static SharedBytes from_string(std::string_view s) {
    const auto* b = reinterpret_cast<const std::byte*>(s.data());
    return own(std::vector<std::byte>(b, b + s.size()));
  }
};

// Convenience: view a string's bytes without copying.
inline std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

inline std::string to_string(std::span<const std::byte> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace ilps::ser
