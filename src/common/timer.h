// Wall-clock timing helpers shared by the runtime and the benches.
#pragma once

#include <chrono>

namespace ilps {

// Seconds since an arbitrary steady epoch; the ilps::mpi analogue of
// MPI_Wtime.
inline double wtime() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

// Scoped stopwatch.
class Timer {
 public:
  Timer() : start_(wtime()) {}
  double elapsed() const { return wtime() - start_; }
  void reset() { start_ = wtime(); }

 private:
  double start_;
};

}  // namespace ilps
