#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace ilps::str {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::optional<int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // Fast path: plain decimal with no leading zero (a leading zero selects
  // strtoll's octal interpretation) and few enough digits that overflow is
  // impossible. Everything else — hex, octal, 19+ digits — takes the
  // strtoll path below, which needs a NUL-terminated copy.
  {
    size_t i = (s[0] == '+' || s[0] == '-') ? 1 : 0;
    size_t ndigits = s.size() - i;
    if (ndigits > 0 && ndigits <= 18 && (s[i] != '0' || ndigits == 1)) {
      int64_t v = 0;
      size_t j = i;
      for (; j < s.size(); ++j) {
        unsigned d = static_cast<unsigned>(s[j]) - '0';
        if (d > 9) break;
        v = v * 10 + static_cast<int64_t>(d);
      }
      if (j == s.size()) return s[0] == '-' ? -v : v;
      return std::nullopt;  // digit run stopped early: not an integer
    }
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 0);
  if (errno == ERANGE) return std::nullopt;
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // Fast rejection: strtod accepts nothing that starts outside this set
  // (digits, sign, decimal point, inf/nan in either case).
  char c0 = s[0];
  if (!((c0 >= '0' && c0 <= '9') || c0 == '+' || c0 == '-' || c0 == '.' || c0 == 'i' ||
        c0 == 'I' || c0 == 'n' || c0 == 'N')) {
    return std::nullopt;
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

bool is_numeric(std::string_view s) {
  return parse_int(s).has_value() || parse_double(s).has_value();
}

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  // %.17g always round-trips; try shorter representations first so common
  // values print cleanly (0.1 rather than 0.10000000000000001).
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  std::string out(buf);
  // Tcl/Swift print integral doubles with a trailing ".0".
  if (out.find_first_of(".eEnN") == std::string::npos) out += ".0";
  return out;
}

namespace {

// Builds a single printf conversion from `spec[i..]` (i at '%') and applies
// it to `arg`. Returns the formatted piece and advances i past the spec.
std::string format_one(std::string_view spec, size_t& i, const std::string& arg) {
  size_t start = i;  // at '%'
  ++i;
  std::string flags;
  while (i < spec.size() && std::strchr("-+ #0", spec[i]) != nullptr) flags += spec[i++];
  std::string width;
  while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) width += spec[i++];
  std::string prec;
  if (i < spec.size() && spec[i] == '.') {
    prec += spec[i++];
    while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) prec += spec[i++];
  }
  if (i >= spec.size()) throw ScriptError("format: truncated conversion in \"" + std::string(spec) + "\"");
  char conv = spec[i++];
  std::string body = "%" + flags + width + prec;
  char buf[512];
  switch (conv) {
    case 'd':
    case 'i': {
      auto v = parse_int(arg);
      if (!v) {
        // Tolerate doubles where an int is requested (Tcl coerces).
        auto d = parse_double(arg);
        if (!d) throw ScriptError("format: expected integer, got \"" + arg + "\"");
        v = static_cast<int64_t>(*d);
      }
      body += "lld";
      std::snprintf(buf, sizeof buf, body.c_str(), static_cast<long long>(*v));
      return buf;
    }
    case 'x':
    case 'X':
    case 'o': {
      auto v = parse_int(arg);
      if (!v) throw ScriptError("format: expected integer, got \"" + arg + "\"");
      body += "ll";
      body += conv;
      std::snprintf(buf, sizeof buf, body.c_str(), static_cast<long long>(*v));
      return buf;
    }
    case 'f':
    case 'e':
    case 'E':
    case 'g':
    case 'G': {
      auto v = parse_double(arg);
      if (!v) throw ScriptError("format: expected number, got \"" + arg + "\"");
      body += conv;
      std::snprintf(buf, sizeof buf, body.c_str(), *v);
      return buf;
    }
    case 'c': {
      auto v = parse_int(arg);
      if (!v) throw ScriptError("format: expected character code, got \"" + arg + "\"");
      return std::string(1, static_cast<char>(*v));
    }
    case 's': {
      body += 's';
      if (arg.size() + 64 > sizeof buf) {
        // Long strings: apply width/precision via a heap buffer.
        std::vector<char> big(arg.size() + 64);
        std::snprintf(big.data(), big.size(), body.c_str(), arg.c_str());
        return big.data();
      }
      std::snprintf(buf, sizeof buf, body.c_str(), arg.c_str());
      return buf;
    }
    default:
      throw ScriptError("format: unsupported conversion %" + std::string(1, conv) + " in \"" +
                        std::string(spec.substr(start)) + "\"");
  }
}

}  // namespace

std::string printf_format(std::string_view spec, const std::vector<std::string>& args) {
  std::string out;
  size_t arg_index = 0;
  size_t i = 0;
  while (i < spec.size()) {
    char c = spec[i];
    if (c != '%') {
      out += c;
      ++i;
      continue;
    }
    if (i + 1 < spec.size() && spec[i + 1] == '%') {
      out += '%';
      i += 2;
      continue;
    }
    if (arg_index >= args.size()) {
      throw ScriptError("format: not enough arguments for \"" + std::string(spec) + "\"");
    }
    out += format_one(spec, i, args[arg_index++]);
  }
  return out;
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (true) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

}  // namespace ilps::str
