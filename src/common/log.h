// Minimal leveled logging. Off by default so tests and benches stay quiet;
// set ILPS_LOG=debug|info|warn|error in the environment or call set_level().
//
// Each line is prefixed with elapsed seconds since process start, the
// calling thread's rank (when one has been bound with set_thread_rank),
// and a single-letter level:  [ilps 0.123s r3 W] message
// warn/error lines flush stderr immediately so they survive a crash.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace ilps::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

Level level();
void set_level(Level level);

// Binds the calling thread to a rank for log prefixes (mpi::World does
// this for every rank thread). -1 means "no rank" and drops the field.
void set_thread_rank(int rank);
int thread_rank();

// Binds the calling thread to a serve request id for log prefixes:
// [ilps 0.123s r3 req17 W]. 0 means "no request" and drops the field.
// obs::RequestScope sets/restores this around request-attributed work;
// the tracer stamps it into every event, so the accessors are inline.
namespace detail {
extern thread_local int64_t t_request;
}  // namespace detail

inline void set_thread_request(int64_t req) { detail::t_request = req; }
inline int64_t thread_request() { return detail::t_request; }

// Thread-safe write of one line to stderr.
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  if (level() <= Level::kDebug) write(Level::kDebug, detail::cat(args...));
}

template <typename... Args>
void info(const Args&... args) {
  if (level() <= Level::kInfo) write(Level::kInfo, detail::cat(args...));
}

template <typename... Args>
void warn(const Args&... args) {
  if (level() <= Level::kWarn) write(Level::kWarn, detail::cat(args...));
}

template <typename... Args>
void error(const Args&... args) {
  if (level() <= Level::kError) write(Level::kError, detail::cat(args...));
}

}  // namespace ilps::log
