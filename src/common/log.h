// Minimal leveled logging. Off by default so tests and benches stay quiet;
// set ILPS_LOG=debug|info|warn in the environment or call set_level().
#pragma once

#include <sstream>
#include <string>

namespace ilps::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

Level level();
void set_level(Level level);

// Thread-safe write of one line to stderr, prefixed with the level.
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  if (level() <= Level::kDebug) write(Level::kDebug, detail::cat(args...));
}

template <typename... Args>
void info(const Args&... args) {
  if (level() <= Level::kInfo) write(Level::kInfo, detail::cat(args...));
}

template <typename... Args>
void warn(const Args&... args) {
  if (level() <= Level::kWarn) write(Level::kWarn, detail::cat(args...));
}

}  // namespace ilps::log
