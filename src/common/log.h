// Minimal leveled logging. Off by default so tests and benches stay quiet;
// set ILPS_LOG=debug|info|warn|error in the environment or call set_level().
//
// Each line is prefixed with elapsed seconds since process start, the
// calling thread's rank (when one has been bound with set_thread_rank),
// and a single-letter level:  [ilps 0.123s r3 W] message
// warn/error lines flush stderr immediately so they survive a crash.
#pragma once

#include <sstream>
#include <string>

namespace ilps::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

Level level();
void set_level(Level level);

// Binds the calling thread to a rank for log prefixes (mpi::World does
// this for every rank thread). -1 means "no rank" and drops the field.
void set_thread_rank(int rank);
int thread_rank();

// Thread-safe write of one line to stderr.
void write(Level level, const std::string& message);

namespace detail {
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const Args&... args) {
  if (level() <= Level::kDebug) write(Level::kDebug, detail::cat(args...));
}

template <typename... Args>
void info(const Args&... args) {
  if (level() <= Level::kInfo) write(Level::kInfo, detail::cat(args...));
}

template <typename... Args>
void warn(const Args&... args) {
  if (level() <= Level::kWarn) write(Level::kWarn, detail::cat(args...));
}

template <typename... Args>
void error(const Args&... args) {
  if (level() <= Level::kError) write(Level::kError, detail::cat(args...));
}

}  // namespace ilps::log
