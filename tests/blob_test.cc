#include <gtest/gtest.h>

#include "blob/blob.h"
#include "common/error.h"
#include "tcl/interp.h"

namespace ilps::blob {
namespace {

TEST(Blob, EmptyAndSized) {
  Blob b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  Blob c = Blob::of_size(16);
  EXPECT_EQ(c.size(), 16u);
  for (std::byte x : c.bytes()) EXPECT_EQ(x, std::byte{0});
}

TEST(Blob, FromStringRoundTrip) {
  Blob b = Blob::from_string("hello\0world");
  EXPECT_EQ(b.to_string(), "hello");  // string_view from literal stops at NUL
  std::string with_nul("a\0b", 3);
  Blob c = Blob::from_string(with_nul);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.to_string(), with_nul);
}

TEST(Blob, FromValuesAndTypedView) {
  std::vector<double> values = {1.5, -2.5, 3.0};
  Blob b = Blob::from_values(std::span<const double>(values));
  EXPECT_EQ(b.size(), 24u);
  auto view = b.as<const double>();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[1], -2.5);
}

TEST(Blob, TypedViewMutates) {
  Blob b = Blob::of_size(2 * sizeof(int64_t));
  b.as<int64_t>()[1] = 42;
  EXPECT_EQ(b.as<const int64_t>()[1], 42);
}

TEST(Blob, MisalignedSizeThrows) {
  Blob b = Blob::of_size(10);
  EXPECT_THROW(b.as<double>(), DataError);
  EXPECT_THROW(b.as<const int64_t>(), DataError);
  EXPECT_NO_THROW(b.as<uint8_t>());
}

TEST(Blob, ShallowCopySharesStorage) {
  Blob a = Blob::of_size(8);
  Blob b = a;
  EXPECT_EQ(a.storage_id(), b.storage_id());
  b.as<int64_t>()[0] = 7;
  EXPECT_EQ(a.as<const int64_t>()[0], 7);
  Blob c = a.clone();
  EXPECT_NE(c.storage_id(), a.storage_id());
  c.as<int64_t>()[0] = 9;
  EXPECT_EQ(a.as<const int64_t>()[0], 7);
}

TEST(FortranMatrix, ColumnMajorLayout) {
  auto m = FortranMatrix<double>::zeroes(3, 2);
  m(0, 0) = 1;
  m(2, 0) = 3;
  m(0, 1) = 4;
  auto flat = m.blob().as<const double>();
  // Column-major: column 0 is elements 0..2, column 1 is 3..5.
  EXPECT_DOUBLE_EQ(flat[0], 1);
  EXPECT_DOUBLE_EQ(flat[2], 3);
  EXPECT_DOUBLE_EQ(flat[3], 4);
}

TEST(FortranMatrix, BoundsChecked) {
  auto m = FortranMatrix<double>::zeroes(2, 2);
  EXPECT_THROW(m(2, 0), DataError);
  EXPECT_THROW(m(0, 2), DataError);
}

TEST(FortranMatrix, SizeValidation) {
  Blob b = Blob::of_size(3 * sizeof(double));
  EXPECT_THROW(FortranMatrix<double>(b, 2, 2), DataError);
  EXPECT_NO_THROW(FortranMatrix<double>(b, 3, 1));
}

TEST(Registry, InsertGetRelease) {
  Registry reg;
  std::string h = reg.insert(Blob::from_string("x"));
  EXPECT_TRUE(h.starts_with("blob:"));
  EXPECT_EQ(reg.get(h).to_string(), "x");
  EXPECT_EQ(reg.count(), 1u);
  EXPECT_TRUE(reg.release(h));
  EXPECT_EQ(reg.count(), 0u);
  EXPECT_FALSE(reg.release(h));
  EXPECT_THROW(reg.get(h), DataError);
}

TEST(Registry, BadHandles) {
  Registry reg;
  EXPECT_THROW(reg.get("nonsense"), DataError);
  EXPECT_THROW(reg.get("blob:zzz"), DataError);
  EXPECT_THROW(reg.get("blob:999"), DataError);
}

class BlobutilsTclTest : public ::testing::Test {
 protected:
  BlobutilsTclTest() { register_blobutils(in, reg); }
  std::string ev(std::string_view s) { return in.eval(s); }
  tcl::Interp in;
  Registry reg;
};

TEST_F(BlobutilsTclTest, PackageProvided) {
  EXPECT_EQ(ev("package require blobutils"), "1.0");
}

TEST_F(BlobutilsTclTest, StringRoundTrip) {
  ev("set h [blobutils::create_string {hello world}]");
  EXPECT_EQ(ev("blobutils::to_string $h"), "hello world");
  EXPECT_EQ(ev("blobutils::size $h"), "11");
  EXPECT_EQ(ev("blobutils::release $h"), "1");
}

TEST_F(BlobutilsTclTest, FloatArrays) {
  ev("set h [blobutils::zeroes_float 4]");
  EXPECT_EQ(ev("blobutils::float_count $h"), "4");
  EXPECT_EQ(ev("blobutils::size $h"), "32");
  ev("blobutils::set_float $h 2 3.5");
  EXPECT_EQ(ev("blobutils::get_float $h 2"), "3.5");
  EXPECT_EQ(ev("blobutils::get_float $h 0"), "0.0");
}

TEST_F(BlobutilsTclTest, FloatListConversions) {
  ev("set h [blobutils::from_floats {1.0 2.5 -3.0}]");
  EXPECT_EQ(ev("blobutils::to_floats $h"), "1.0 2.5 -3.0");
  EXPECT_EQ(ev("blobutils::float_count $h"), "3");
}

TEST_F(BlobutilsTclTest, IntArrays) {
  ev("set h [blobutils::from_ints {10 -20 30}]");
  EXPECT_EQ(ev("blobutils::to_ints $h"), "10 -20 30");
  ev("blobutils::set_int $h 1 99");
  EXPECT_EQ(ev("blobutils::get_int $h 1"), "99");
}

TEST_F(BlobutilsTclTest, SizeofFloat) {
  EXPECT_EQ(ev("blobutils::sizeof_float"), "8");
}

TEST_F(BlobutilsTclTest, MatrixColumnMajor) {
  // 3x2 matrix: set (2,1) -> flat index 1*3+2 = 5.
  ev("set h [blobutils::zeroes_float 6]");
  ev("blobutils::matrix_set $h 3 2 1 7.5");
  EXPECT_EQ(ev("blobutils::matrix_get $h 3 2 1"), "7.5");
  EXPECT_EQ(ev("blobutils::get_float $h 5"), "7.5");
}

TEST_F(BlobutilsTclTest, Errors) {
  EXPECT_THROW(ev("blobutils::to_string blob:404"), DataError);
  ev("set h [blobutils::zeroes_float 2]");
  EXPECT_THROW(ev("blobutils::get_float $h 2"), tcl::TclError);
  EXPECT_THROW(ev("blobutils::get_float $h -1"), tcl::TclError);
  EXPECT_THROW(ev("blobutils::zeroes_float -3"), tcl::TclError);
  EXPECT_THROW(ev("blobutils::from_floats {1.0 abc}"), tcl::TclError);
  EXPECT_THROW(ev("blobutils::set_float $h zero 1"), tcl::TclError);
}

}  // namespace
}  // namespace ilps::blob
