// Turbine: rules, the data API, interlanguage leaf functions, and the
// engine/worker loops, end to end through the runtime.
#include <gtest/gtest.h>

#include "runtime/runner.h"
#include "turbine/app.h"

namespace ilps::turbine {
namespace {

runtime::Config small() {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  return cfg;
}

TEST(Runtime, EmptyProgramTerminates) {
  auto result = runtime::run_program(small(), "");
  EXPECT_TRUE(result.lines.empty());
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(Runtime, ConfigValidation) {
  runtime::Config bad = small();
  bad.workers = 0;
  EXPECT_THROW(runtime::run_program(bad, ""), Error);
  bad = small();
  bad.engines = 0;
  EXPECT_THROW(runtime::run_program(bad, ""), Error);
}

TEST(Runtime, PutsIsCollected) {
  auto result = runtime::run_program(small(), "puts hello; puts world");
  ASSERT_EQ(result.lines.size(), 2u);
  EXPECT_EQ(result.lines[0], "hello");
  EXPECT_EQ(result.lines[1], "world");
}

TEST(Runtime, PrintfBuiltin) {
  auto result = runtime::run_program(small(), "printf {x=%d y=%s} 42 ok");
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], "x=42 y=ok");
}

TEST(TurbineData, StoreRetrieveOnEngine) {
  auto result = runtime::run_program(small(), R"(
    set x [turbine::allocate integer]
    turbine::store_integer $x 42
    puts "value: [turbine::retrieve_integer $x]"
    puts "type: [turbine::typeof $x]"
    puts "exists: [turbine::exists $x]"
  )");
  EXPECT_TRUE(result.contains("value: 42"));
  EXPECT_TRUE(result.contains("type: integer"));
  EXPECT_TRUE(result.contains("exists: 1"));
}

TEST(TurbineData, TypedStores) {
  auto result = runtime::run_program(small(), R"(
    set f [turbine::allocate float]
    turbine::store_float $f 2.5
    set s [turbine::allocate string]
    turbine::store_string $s {hello world}
    puts "[turbine::retrieve_float $f]|[turbine::retrieve_string $s]"
  )");
  EXPECT_TRUE(result.contains("2.5|hello world"));
}

TEST(TurbineData, BlobRoundTrip) {
  auto result = runtime::run_program(small(), R"(
    set b [turbine::allocate blob]
    set h [blobutils::from_floats {1.5 2.5}]
    turbine::store_blob $b $h
    set h2 [turbine::retrieve_blob $b]
    puts "floats: [blobutils::to_floats $h2]"
  )");
  EXPECT_TRUE(result.contains("floats: 1.5 2.5"));
}

TEST(TurbineData, Containers) {
  auto result = runtime::run_program(small(), R"(
    set c [turbine::allocate container]
    turbine::container_insert $c k1 v1
    turbine::container_insert $c k2 v2
    puts "size: [turbine::container_size $c]"
    puts "k2: [turbine::container_lookup $c k2]"
    puts "all: [turbine::enumerate $c]"
    turbine::write_incr $c -1
  )");
  EXPECT_TRUE(result.contains("size: 2"));
  EXPECT_TRUE(result.contains("k2: v2"));
  EXPECT_TRUE(result.contains("all: k1 v1 k2 v2"));
}

TEST(TurbineData, StoreErrors) {
  EXPECT_THROW(runtime::run_program(small(), R"(
    set x [turbine::allocate integer]
    turbine::store_integer $x 1
    turbine::store_integer $x 2
  )"),
               Error);
  EXPECT_THROW(runtime::run_program(small(), R"(
    set x [turbine::allocate integer]
    turbine::store_integer $x notanumber
  )"),
               Error);
}

// ---- rules ----

TEST(Rules, FireWhenInputsClose) {
  auto result = runtime::run_program(small(), R"(
    proc add_leaf {x y} {
      set vx [turbine::retrieve_integer $x]
      set vy [turbine::retrieve_integer $y]
      puts "sum: [expr $vx + $vy]"
    }
    proc swift:main {} {
      set x [turbine::allocate integer]
      set y [turbine::allocate integer]
      turbine::rule [list $x $y] "add_leaf $x $y" type WORK
      turbine::store_integer $x 20
      turbine::store_integer $y 22
    }
  )");
  EXPECT_TRUE(result.contains("sum: 42"));
  EXPECT_EQ(result.unfired_rules, 0u);
  EXPECT_EQ(result.engine_stats.rules_fired, 1u);
}

TEST(Rules, AlreadyClosedFiresImmediately) {
  auto result = runtime::run_program(small(), R"(
    proc show {x} { puts "got [turbine::retrieve_integer $x]" }
    proc swift:main {} {
      set x [turbine::allocate integer]
      turbine::store_integer $x 7
      turbine::rule [list $x] "show $x" type WORK
    }
  )");
  EXPECT_TRUE(result.contains("got 7"));
  EXPECT_EQ(result.engine_stats.rules_fired_immediately, 1u);
}

TEST(Rules, DataflowChain) {
  // f stores, g consumes f's output: a two-stage pipeline through workers.
  auto result = runtime::run_program(small(), R"(
    proc f_leaf {out in} {
      turbine::store_integer $out [expr [turbine::retrieve_integer $in] * 2]
    }
    proc g_leaf {out in} {
      turbine::store_integer $out [expr [turbine::retrieve_integer $in] + 1]
    }
    proc done_leaf {in} { puts "result: [turbine::retrieve_integer $in]" }
    proc swift:main {} {
      set a [turbine::allocate integer]
      set b [turbine::allocate integer]
      set c [turbine::allocate integer]
      turbine::rule [list $a] "f_leaf $b $a" type WORK
      turbine::rule [list $b] "g_leaf $c $b" type WORK
      turbine::rule [list $c] "done_leaf $c" type WORK
      turbine::store_integer $a 10
    }
  )");
  EXPECT_TRUE(result.contains("result: 21"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(Rules, LocalRulesRunOnEngine) {
  auto result = runtime::run_program(small(), R"(
    set v [turbine::allocate void]
    turbine::rule [list $v] {puts "local fired on rank [turbine::rank]"} type LOCAL
    turbine::store_void $v
  )");
  EXPECT_TRUE(result.contains("local fired on rank 0"));
}

TEST(Rules, UnfiredRulesReported) {
  runtime::Config cfg = small();
  cfg.deadlock_error = false;  // this test inspects the counters directly
  auto result = runtime::run_program(cfg, R"(
    set never [turbine::allocate integer]
    turbine::rule [list $never] {puts should_not_run} type WORK
  )");
  EXPECT_EQ(result.unfired_rules, 1u);
  EXPECT_FALSE(result.contains("should_not_run"));
  ASSERT_EQ(result.stuck.size(), 1u);
  ASSERT_EQ(result.stuck[0].waiting.size(), 1u);
  EXPECT_TRUE(result.stuck[0].waiting[0].name.empty());  // no symbol registered
  EXPECT_GE(result.server_stats.stuck_datums, 1u);
}

TEST(Rules, UnfiredRulesThrowDeadlockError) {
  EXPECT_THROW(runtime::run_program(small(), R"(
    set never [turbine::allocate integer]
    turbine::declare_name $never never 7
    turbine::rule [list $never] {puts should_not_run} type WORK
  )"),
               DeadlockError);
}

TEST(Rules, RejectedOnWorkers) {
  EXPECT_THROW(runtime::run_program(small(), R"(
    turbine::put_work {turbine::rule [list 1] {puts x} type WORK}
  )"),
               Error);
}

TEST(Rules, FanOutManyTasks) {
  runtime::Config cfg = small();
  cfg.workers = 4;
  auto result = runtime::run_program(cfg, R"(
    proc work_leaf {i out} {
      turbine::store_integer $out [expr $i * $i]
    }
    proc report {out i} {
      puts "sq($i)=[turbine::retrieve_integer $out]"
    }
    proc swift:main {} {
      for {set i 0} {$i < 10} {incr i} {
        set out [turbine::allocate integer]
        turbine::put_work "work_leaf $i $out"
        turbine::rule [list $out] "report $out $i" type CONTROL
      }
    }
  )");
  EXPECT_EQ(result.lines.size(), 10u);
  EXPECT_TRUE(result.contains("sq(7)=49"));
  EXPECT_GE(result.worker_stats.tasks, 10u);
}

// ---- interlanguage leaf functions ----

TEST(Interlanguage, PythonLeaf) {
  auto result = runtime::run_program(small(), R"(
    puts "py: [python {x = 6 * 7} {x}]"
  )");
  EXPECT_TRUE(result.contains("py: 42"));
}

TEST(Interlanguage, PythonOnWorker) {
  auto result = runtime::run_program(small(), R"(
    turbine::put_work {puts "worker py: [python {import math} {math.floor(math.pi)}]"}
  )");
  EXPECT_TRUE(result.contains("worker py: 3"));
  EXPECT_EQ(result.worker_stats.python_evals, 1u);
}

TEST(Interlanguage, RLeaf) {
  auto result = runtime::run_program(small(), R"(
    puts "r: [R {v <- c(1, 2, 3, 4)} {mean(v)}]"
  )");
  EXPECT_TRUE(result.contains("r: 2.5"));
}

TEST(Interlanguage, LowercaseRAlias) {
  auto result = runtime::run_program(small(), R"(
    puts "r: [r {x <- 5} {x * 3}]"
  )");
  EXPECT_TRUE(result.contains("r: 15"));
}

TEST(Interlanguage, PythonErrorsSurface) {
  EXPECT_THROW(runtime::run_program(small(), "python {1/0}"), Error);
  EXPECT_THROW(runtime::run_program(small(), "R {stop(\"r failed\")}"), Error);
}

TEST(Interlanguage, PythonStatePersistsWithRetain) {
  auto result = runtime::run_program(small(), R"(
    turbine::put_work {
      python {counter = 10}
      puts "first: [python {counter += 1} {counter}]"
      puts "second: [python {counter += 1} {counter}]"
    }
  )");
  EXPECT_TRUE(result.contains("first: 11"));
  EXPECT_TRUE(result.contains("second: 12"));
}

TEST(Interlanguage, ReinitializePolicyClearsBetweenTasks) {
  runtime::Config cfg = small();
  cfg.workers = 1;  // both tasks land on the same worker
  cfg.policy = InterpPolicy::kReinitialize;
  // With reinitialize, the second task must not see `state`; probe by
  // catching the NameError through Tcl.
  auto result2 = runtime::run_program(cfg, R"(
    turbine::put_work {python {state = 1}}
    turbine::put_work {
      if {[catch {python {} {state}} msg]} {
        puts "clean slate"
      } else {
        puts "leaked: $msg"
      }
    }
  )");
  EXPECT_GE(result2.worker_stats.interpreter_resets, 1u);
  // Both orders of task delivery leave the interpreter reset before the
  // probe task runs (1 worker, FIFO among equal priorities).
  EXPECT_TRUE(result2.contains("clean slate"));
}

TEST(Interlanguage, RetainPolicyKeepsState) {
  runtime::Config cfg = small();
  cfg.workers = 1;
  cfg.policy = InterpPolicy::kRetain;
  auto result = runtime::run_program(cfg, R"(
    turbine::put_work {python {state = 41}}
    turbine::put_work {puts "kept: [python {state += 1} {state}]"}
  )");
  EXPECT_TRUE(result.contains("kept: 42"));
  EXPECT_EQ(result.worker_stats.interpreter_resets, 0u);
}

// ---- app execution ----

TEST(App, RunRealCommand) {
  AppResult r = run_app({"/bin/echo", "hello", "app"}, /*restricted_os=*/false);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output, "hello app\n");
}

TEST(App, NonzeroExit) {
  AppResult r = run_app({"/bin/sh", "-c", "exit 3"}, false);
  EXPECT_EQ(r.exit_code, 3);
}

TEST(App, MissingProgram) {
  AppResult r = run_app({"/no/such/program"}, false);
  EXPECT_EQ(r.exit_code, 127);
}

TEST(App, RestrictedOsRefuses) {
  EXPECT_THROW(run_app({"/bin/echo", "x"}, /*restricted_os=*/true), OsError);
}

TEST(App, ThroughTcl) {
  auto result = runtime::run_program(small(), R"(
    puts "app says: [turbine::exec_app /bin/echo shell_result]"
  )");
  EXPECT_TRUE(result.contains("app says: shell_result"));
  EXPECT_EQ(result.worker_stats.app_execs, 1u);
}

TEST(App, RestrictedOsModeThroughRuntime) {
  runtime::Config cfg = small();
  cfg.restricted_os = true;
  // On a BG/Q-like system the app route fails...
  EXPECT_THROW(runtime::run_program(cfg, "turbine::exec_app /bin/echo x"), Error);
  // ...but the embedded interpreter route still works (the paper's point).
  auto result = runtime::run_program(cfg, R"(puts "py: [python {} {1 + 1}]")");
  EXPECT_TRUE(result.contains("py: 2"));
}

// ---- multiple engines ----

TEST(MultiEngine, ControlTasksDistribute) {
  runtime::Config cfg;
  cfg.engines = 2;
  cfg.workers = 3;
  cfg.servers = 2;
  auto result = runtime::run_program(cfg, R"(
    for {set i 0} {$i < 8} {incr i} {
      turbine::put_control "puts \"ctl $i on engine \[turbine::rank\]\""
    }
  )");
  EXPECT_EQ(result.lines.size(), 8u);
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(MultiEngine, RulesOnShippedFragments) {
  runtime::Config cfg;
  cfg.engines = 2;
  cfg.workers = 2;
  cfg.servers = 1;
  // A shipped control fragment creates rules on whichever engine runs it.
  auto result = runtime::run_program(cfg, R"(
    proc stage {i} {
      set x [turbine::allocate integer]
      turbine::rule [list $x] "puts \"fired $i\"" type LOCAL
      turbine::store_integer $x $i
    }
    proc swift:main {} {
      for {set i 0} {$i < 6} {incr i} {
        turbine::put_control "stage $i"
      }
    }
  )");
  EXPECT_EQ(result.lines.size(), 6u);
  EXPECT_TRUE(result.contains("fired 3"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(TurbineData, TargetedWorkToSpecificWorker) {
  runtime::Config cfg = small();
  cfg.workers = 3;
  auto result = runtime::run_program(cfg, R"(
    turbine::put_work_to 1 {puts "ran on [turbine::rank]"}
    turbine::put_work_to 3 {puts "ran on [turbine::rank]"}
  )");
  ASSERT_EQ(result.lines.size(), 2u);
  EXPECT_TRUE(result.contains("ran on 1"));
  EXPECT_TRUE(result.contains("ran on 3"));
}

TEST(TurbineData, ReadRefcountGarbageCollects) {
  auto result = runtime::run_program(small(), R"(
    set x [turbine::allocate integer]
    turbine::store_integer $x 5
    puts "exists before: [turbine::exists $x]"
    turbine::read_incr $x -1
    puts "exists after: [turbine::exists $x]"
  )");
  EXPECT_TRUE(result.contains("exists before: 1"));
  EXPECT_TRUE(result.contains("exists after: 0"));
}

TEST(Stats, TrafficAndCounters) {
  auto result = runtime::run_program(small(), R"(
    set x [turbine::allocate integer]
    turbine::store_integer $x 1
    puts [turbine::retrieve_integer $x]
  )");
  EXPECT_GT(result.traffic.messages, 0u);
  EXPECT_GT(result.server_stats.data_ops, 0u);
  EXPECT_GT(result.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace ilps::turbine
