#include <gtest/gtest.h>

#include "common/error.h"
#include "tcl/value.h"

namespace ilps::tcl {
namespace {

TEST(ListSplit, Simple) {
  auto v = list_split("a b c");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(ListSplit, ExtraWhitespace) {
  auto v = list_split("  a\t b \n c  ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], "c");
}

TEST(ListSplit, Empty) {
  EXPECT_TRUE(list_split("").empty());
  EXPECT_TRUE(list_split("   \n\t ").empty());
}

TEST(ListSplit, Braced) {
  auto v = list_split("{a b} c {d {e f}}");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a b");
  EXPECT_EQ(v[1], "c");
  EXPECT_EQ(v[2], "d {e f}");
}

TEST(ListSplit, EmptyBraced) {
  auto v = list_split("{} a {}");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "");
  EXPECT_EQ(v[2], "");
}

TEST(ListSplit, Quoted) {
  auto v = list_split("\"a b\" \"c\\td\"");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a b");
  EXPECT_EQ(v[1], "c\td");
}

TEST(ListSplit, BackslashInBare) {
  auto v = list_split("a\\ b c");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a b");
}

TEST(ListSplit, EscapedBraceInsideBraces) {
  auto v = list_split("{a \\{ b}");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "a \\{ b");
}

TEST(ListSplit, UnbalancedThrows) {
  EXPECT_THROW(list_split("{a b"), ScriptError);
  EXPECT_THROW(list_split("\"a b"), ScriptError);
  EXPECT_THROW(list_split("{a}b"), ScriptError);
}

TEST(ListQuote, PlainPassThrough) {
  EXPECT_EQ(list_quote("abc"), "abc");
  EXPECT_EQ(list_quote("a.b/c:d"), "a.b/c:d");
}

TEST(ListQuote, Empty) { EXPECT_EQ(list_quote(""), "{}"); }

TEST(ListQuote, SpacesBraced) { EXPECT_EQ(list_quote("a b"), "{a b}"); }

TEST(ListQuote, SpecialCharsBraced) {
  EXPECT_EQ(list_quote("$x"), "{$x}");
  EXPECT_EQ(list_quote("[cmd]"), "{[cmd]}");
  EXPECT_EQ(list_quote("a;b"), "{a;b}");
}

TEST(ListQuote, UnbalancedBracesBackslashed) {
  std::string quoted = list_quote("a{b");
  // Must round-trip through list_split.
  auto v = list_split(quoted);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], "a{b");
}

TEST(ListRoundTrip, Exhaustive) {
  std::vector<std::string> nasty = {
      "",        "a",        "a b",     "{",     "}",        "{}",        "a{",
      "$var",    "[cmd]",    "a\nb",    "a\tb",  "\\",       "a\\",      "\"q\"",
      "a;b",     " lead",    "trail ",  "a}b{c", "{bal} ok", "\\n",      "e\\{f",
  };
  auto joined = list_join(nasty);
  auto back = list_split(joined);
  ASSERT_EQ(back.size(), nasty.size());
  for (size_t i = 0; i < nasty.size(); ++i) {
    EXPECT_EQ(back[i], nasty[i]) << "element " << i << " through " << joined;
  }
}

TEST(ListRoundTrip, Nested) {
  std::vector<std::string> inner = {"x y", "z"};
  std::vector<std::string> outer = {list_join(inner), "w"};
  auto joined = list_join(outer);
  auto back = list_split(joined);
  ASSERT_EQ(back.size(), 2u);
  auto inner_back = list_split(back[0]);
  ASSERT_EQ(inner_back.size(), 2u);
  EXPECT_EQ(inner_back[0], "x y");
}

TEST(ParseBool, Words) {
  EXPECT_TRUE(parse_bool("true").value());
  EXPECT_TRUE(parse_bool("YES").value());
  EXPECT_TRUE(parse_bool("On").value());
  EXPECT_FALSE(parse_bool("false").value());
  EXPECT_FALSE(parse_bool("no").value());
  EXPECT_FALSE(parse_bool("off").value());
}

TEST(ParseBool, Numbers) {
  EXPECT_TRUE(parse_bool("1").value());
  EXPECT_TRUE(parse_bool("42").value());
  EXPECT_TRUE(parse_bool("-1").value());
  EXPECT_FALSE(parse_bool("0").value());
  EXPECT_TRUE(parse_bool("0.5").value());
  EXPECT_FALSE(parse_bool("0.0").value());
}

TEST(ParseBool, Invalid) {
  EXPECT_FALSE(parse_bool("maybe").has_value());
  EXPECT_FALSE(parse_bool("").has_value());
}

TEST(BackslashEscape, Standard) {
  size_t i = 0;
  EXPECT_EQ(backslash_escape("\\n", i), "\n");
  i = 0;
  EXPECT_EQ(backslash_escape("\\t", i), "\t");
  i = 0;
  EXPECT_EQ(backslash_escape("\\\\", i), "\\");
  i = 0;
  EXPECT_EQ(backslash_escape("\\q", i), "q");
}

TEST(BackslashEscape, Hex) {
  size_t i = 0;
  EXPECT_EQ(backslash_escape("\\x41", i), "A");
  EXPECT_EQ(i, 4u);
  i = 0;
  EXPECT_EQ(backslash_escape("\\x4", i), "\x04");
}

TEST(BackslashEscape, Unicode) {
  size_t i = 0;
  EXPECT_EQ(backslash_escape("\\u0041", i), "A");
  i = 0;
  std::string e_acute = backslash_escape("\\u00e9", i);
  EXPECT_EQ(e_acute, "\xc3\xa9");
}

TEST(BackslashEscape, LineContinuation) {
  size_t i = 0;
  EXPECT_EQ(backslash_escape("\\\n   x", i), " ");
  EXPECT_EQ(i, 5u);  // consumed backslash, newline, following blanks
}

}  // namespace
}  // namespace ilps::tcl
