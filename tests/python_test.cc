// MiniPy: the embedded Python-subset interpreter.
#include <gtest/gtest.h>

#include "python/interp.h"

namespace ilps::py {
namespace {

class PyTest : public ::testing::Test {
 protected:
  PyTest() {
    in.set_print_handler([this](const std::string& line) { output += line + "\n"; });
  }
  // Runs code, returns str(expr) — the Swift/T python() calling convention.
  std::string ev(const std::string& code, const std::string& expr = "") {
    return in.eval(code, expr);
  }
  std::string ex(const std::string& expr) { return in.eval("", expr); }

  Interpreter in;
  std::string output;
};

// ---- literals and arithmetic ----

TEST_F(PyTest, Arithmetic) {
  EXPECT_EQ(ex("1 + 2 * 3"), "7");
  EXPECT_EQ(ex("(1 + 2) * 3"), "9");
  EXPECT_EQ(ex("7 // 2"), "3");
  EXPECT_EQ(ex("-7 // 2"), "-4");
  EXPECT_EQ(ex("7 % 3"), "1");
  EXPECT_EQ(ex("-7 % 3"), "2");
  EXPECT_EQ(ex("7 / 2"), "3.5");
  EXPECT_EQ(ex("2 ** 10"), "1024");
  EXPECT_EQ(ex("2 ** -1"), "0.5");
  EXPECT_EQ(ex("-2 ** 2"), "-4");  // unary binds looser than **
  EXPECT_EQ(ex("10 - 3 - 2"), "5");
}

TEST_F(PyTest, FloatFormatting) {
  EXPECT_EQ(ex("1.5 + 2.5"), "4.0");
  EXPECT_EQ(ex("0.1 + 0.2"), "0.30000000000000004");
  EXPECT_EQ(ex("1e3"), "1000.0");
}

TEST_F(PyTest, BitOps) {
  EXPECT_EQ(ex("6 & 3"), "2");
  EXPECT_EQ(ex("6 | 3"), "7");
  EXPECT_EQ(ex("6 ^ 3"), "5");
  EXPECT_EQ(ex("1 << 4"), "16");
  EXPECT_EQ(ex("~0"), "-1");
}

TEST_F(PyTest, Strings) {
  EXPECT_EQ(ex("'a' + \"b\""), "ab");
  EXPECT_EQ(ex("'ab' * 3"), "ababab");
  EXPECT_EQ(ex("'a' 'b' 'c'"), "abc");  // adjacent concatenation
  EXPECT_EQ(ex("len('hello')"), "5");
  EXPECT_EQ(ex("'hello'[1]"), "e");
  EXPECT_EQ(ex("'hello'[-1]"), "o");
  EXPECT_EQ(ex("'hello'[1:3]"), "el");
  EXPECT_EQ(ex("'hello'[:2]"), "he");
  EXPECT_EQ(ex("'hello'[2:]"), "llo");
  EXPECT_EQ(ex("'hello'[-3:]"), "llo");
  EXPECT_EQ(ex("'a\\tb'"), "a\tb");
}

TEST_F(PyTest, Booleans) {
  EXPECT_EQ(ex("True and False"), "False");
  EXPECT_EQ(ex("True or False"), "True");
  EXPECT_EQ(ex("not 0"), "True");
  EXPECT_EQ(ex("1 < 2 < 3"), "True");   // chained
  EXPECT_EQ(ex("1 < 2 > 3"), "False");
  EXPECT_EQ(ex("None is None"), "True");
  EXPECT_EQ(ex("1 == 1.0"), "True");
  EXPECT_EQ(ex("True == 1"), "True");
  EXPECT_EQ(ex("'a' != 'b'"), "True");
}

TEST_F(PyTest, ShortCircuitValues) {
  EXPECT_EQ(ex("0 or 'default'"), "default");
  EXPECT_EQ(ex("'x' and 'y'"), "y");
  EXPECT_EQ(ex("[] or [1]"), "[1]");
}

TEST_F(PyTest, Ternary) {
  EXPECT_EQ(ex("'big' if 10 > 5 else 'small'"), "big");
  EXPECT_EQ(ex("'big' if 1 > 5 else 'small'"), "small");
}

// ---- collections ----

TEST_F(PyTest, Lists) {
  EXPECT_EQ(ex("[1, 2, 3]"), "[1, 2, 3]");
  EXPECT_EQ(ex("len([1, 2, 3])"), "3");
  EXPECT_EQ(ex("[1, 2] + [3]"), "[1, 2, 3]");
  EXPECT_EQ(ex("[0] * 3"), "[0, 0, 0]");
  EXPECT_EQ(ex("[1, 2, 3][1]"), "2");
  EXPECT_EQ(ex("[1, 2, 3][-1]"), "3");
  EXPECT_EQ(ex("[1, 2, 3, 4][1:3]"), "[2, 3]");
  EXPECT_EQ(ex("2 in [1, 2]"), "True");
  EXPECT_EQ(ex("5 not in [1, 2]"), "True");
}

TEST_F(PyTest, ListMethodsAndAliasing) {
  ev("a = [1, 2]\nb = a\nb.append(3)");
  EXPECT_EQ(ex("a"), "[1, 2, 3]");  // aliasing: both names see the append
  ev("a.extend([4, 5])\na.insert(0, 0)");
  EXPECT_EQ(ex("a"), "[0, 1, 2, 3, 4, 5]");
  EXPECT_EQ(ev("x = a.pop()", "x"), "5");
  ev("a.remove(0)");
  EXPECT_EQ(ex("a"), "[1, 2, 3, 4]");
  EXPECT_EQ(ex("a.index(3)"), "2");
  EXPECT_EQ(ex("[1, 1, 2].count(1)"), "2");
  ev("c = [3, 1, 2]\nc.sort()");
  EXPECT_EQ(ex("c"), "[1, 2, 3]");
  ev("c.reverse()");
  EXPECT_EQ(ex("c"), "[3, 2, 1]");
}

TEST_F(PyTest, Dicts) {
  ev("d = {'a': 1, 'b': 2}");
  EXPECT_EQ(ex("d['a']"), "1");
  EXPECT_EQ(ex("len(d)"), "2");
  EXPECT_EQ(ex("'a' in d"), "True");
  EXPECT_EQ(ex("'z' in d"), "False");
  ev("d['c'] = 3\nd['a'] = 10");
  EXPECT_EQ(ex("d['a']"), "10");
  EXPECT_EQ(ex("sorted(d.keys())"), "['a', 'b', 'c']");
  EXPECT_EQ(ex("d.get('z', 99)"), "99");
  EXPECT_EQ(ex("d.items()[0]"), "('a', 10)");
  ev("del d['a']");
  EXPECT_EQ(ex("'a' in d"), "False");
  EXPECT_EQ(ex("{1: 'x'}[1]"), "x");
}

TEST_F(PyTest, Tuples) {
  EXPECT_EQ(ex("(1, 2)[0]"), "1");
  EXPECT_EQ(ex("len((1, 2, 3))"), "3");
  EXPECT_EQ(ex("(1,)"), "(1,)");
  EXPECT_EQ(ex("()"), "()");
  ev("a, b = 1, 2");
  EXPECT_EQ(ex("a + b"), "3");
  ev("a, b = b, a");
  EXPECT_EQ(ex("(a, b)"), "(2, 1)");
}

TEST_F(PyTest, ListComprehension) {
  EXPECT_EQ(ex("[x * x for x in range(5)]"), "[0, 1, 4, 9, 16]");
  EXPECT_EQ(ex("[x for x in range(10) if x % 2 == 0]"), "[0, 2, 4, 6, 8]");
  EXPECT_EQ(ex("[k + v for k, v in [('a', 'x'), ('b', 'y')]]"), "['ax', 'by']");
}

// ---- control flow and functions ----

TEST_F(PyTest, IfElifElse) {
  const char* code =
      "def classify(n):\n"
      "    if n < 0:\n"
      "        return 'neg'\n"
      "    elif n == 0:\n"
      "        return 'zero'\n"
      "    else:\n"
      "        return 'pos'\n";
  ev(code);
  EXPECT_EQ(ex("classify(-5)"), "neg");
  EXPECT_EQ(ex("classify(0)"), "zero");
  EXPECT_EQ(ex("classify(3)"), "pos");
}

TEST_F(PyTest, WhileLoop) {
  ev("i = 0\ntotal = 0\nwhile i < 10:\n    i += 1\n    if i % 2: continue\n    if i > 8: break\n    total += i");
  EXPECT_EQ(ex("total"), "20");  // 2+4+6+8
}

TEST_F(PyTest, ForLoop) {
  ev("total = 0\nfor i in range(1, 5):\n    total += i");
  EXPECT_EQ(ex("total"), "10");
  ev("s = ''\nfor c in 'abc':\n    s += c + '.'");
  EXPECT_EQ(ex("s"), "a.b.c.");
  ev("pairs = ''\nfor k, v in [(1, 'a'), (2, 'b')]:\n    pairs += str(k) + v");
  EXPECT_EQ(ex("pairs"), "1a2b");
}

TEST_F(PyTest, FunctionsAndDefaults) {
  ev("def add(a, b=10):\n    return a + b");
  EXPECT_EQ(ex("add(1, 2)"), "3");
  EXPECT_EQ(ex("add(5)"), "15");
  EXPECT_THROW(ex("add()"), PyError);
  EXPECT_THROW(ex("add(1, 2, 3)"), PyError);
}

TEST_F(PyTest, Recursion) {
  ev("def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)");
  EXPECT_EQ(ex("fib(15)"), "610");
}

TEST_F(PyTest, RecursionLimit) {
  ev("def loop():\n    return loop()");
  EXPECT_THROW(ex("loop()"), PyError);
}

TEST_F(PyTest, LocalsDontLeak) {
  ev("x = 'global'\ndef f():\n    x = 'local'\n    return x");
  EXPECT_EQ(ex("f()"), "local");
  EXPECT_EQ(ex("x"), "global");
}

TEST_F(PyTest, GlobalStatement) {
  ev("count = 0\ndef bump():\n    global count\n    count += 1");
  ev("bump()\nbump()");
  EXPECT_EQ(ex("count"), "2");
}

TEST_F(PyTest, Lambda) {
  ev("double = lambda x: x * 2");
  EXPECT_EQ(ex("double(21)"), "42");
  EXPECT_EQ(ex("(lambda a, b=3: a + b)(1)"), "4");
}

TEST_F(PyTest, NestedFunctions) {
  ev("def outer(n):\n    def inner(m):\n        return m + 1\n    return inner(n) * 2");
  EXPECT_EQ(ex("outer(5)"), "12");
}

// ---- builtins ----

TEST_F(PyTest, Builtins) {
  EXPECT_EQ(ex("abs(-3)"), "3");
  EXPECT_EQ(ex("abs(-3.5)"), "3.5");
  EXPECT_EQ(ex("min(3, 1, 2)"), "1");
  EXPECT_EQ(ex("max([3, 1, 2])"), "3");
  EXPECT_EQ(ex("sum([1, 2, 3])"), "6");
  EXPECT_EQ(ex("sum([1.5, 2.5])"), "4.0");
  EXPECT_EQ(ex("sorted([3, 1, 2])"), "[1, 2, 3]");
  EXPECT_EQ(ex("reversed([1, 2])"), "[2, 1]");
  EXPECT_EQ(ex("round(3.7)"), "4");
  EXPECT_EQ(ex("round(3.14159, 2)"), "3.14");
  EXPECT_EQ(ex("int('42')"), "42");
  EXPECT_EQ(ex("int(3.9)"), "3");
  EXPECT_EQ(ex("float('2.5')"), "2.5");
  EXPECT_EQ(ex("str(42)"), "42");
  EXPECT_EQ(ex("repr('a')"), "'a'");
  EXPECT_EQ(ex("list('abc')"), "['a', 'b', 'c']");
  EXPECT_EQ(ex("range(3)"), "[0, 1, 2]");
  EXPECT_EQ(ex("range(2, 8, 2)"), "[2, 4, 6]");
  EXPECT_EQ(ex("range(3, 0, -1)"), "[3, 2, 1]");
  EXPECT_EQ(ex("enumerate(['a', 'b'])"), "[(0, 'a'), (1, 'b')]");
  EXPECT_EQ(ex("zip([1, 2], ['a', 'b'])"), "[(1, 'a'), (2, 'b')]");
  EXPECT_EQ(ex("bool([])"), "False");
  EXPECT_EQ(ex("type(1)"), "<class 'int'>");
}

TEST_F(PyTest, Print) {
  ev("print('hello', 42)");
  ev("print([1, 2])");
  EXPECT_EQ(output, "hello 42\n[1, 2]\n");
}

TEST_F(PyTest, StringMethods) {
  EXPECT_EQ(ex("'AbC'.upper()"), "ABC");
  EXPECT_EQ(ex("'AbC'.lower()"), "abc");
  EXPECT_EQ(ex("'  x  '.strip()"), "x");
  EXPECT_EQ(ex("'a,b,c'.split(',')"), "['a', 'b', 'c']");
  EXPECT_EQ(ex("'a b  c'.split()"), "['a', 'b', 'c']");
  EXPECT_EQ(ex("'-'.join(['a', 'b'])"), "a-b");
  EXPECT_EQ(ex("'hello'.replace('l', 'L')"), "heLLo");
  EXPECT_EQ(ex("'hello'.startswith('he')"), "True");
  EXPECT_EQ(ex("'hello'.endswith('lo')"), "True");
  EXPECT_EQ(ex("'hello'.find('ll')"), "2");
  EXPECT_EQ(ex("'hello'.find('z')"), "-1");
  EXPECT_EQ(ex("'123'.isdigit()"), "True");
  EXPECT_EQ(ex("'12a'.isdigit()"), "False");
  EXPECT_EQ(ex("'7'.zfill(3)"), "007");
  EXPECT_EQ(ex("'x={} y={}'.format(1, 2)"), "x=1 y=2");
  EXPECT_EQ(ex("'{0}{0}'.format('ab')"), "abab");
  EXPECT_EQ(ex("'{:.2f}'.format(3.14159)"), "3.14");
}

TEST_F(PyTest, PercentFormatting) {
  EXPECT_EQ(ex("'%d-%s' % (42, 'x')"), "42-x");
  EXPECT_EQ(ex("'%.3f' % 3.14159"), "3.142");
  EXPECT_EQ(ex("'%05d' % 42"), "00042");
}

TEST_F(PyTest, FStrings) {
  ev("name = 'world'\nn = 3");
  EXPECT_EQ(ex("f'hello {name}'"), "hello world");
  EXPECT_EQ(ex("f'{n + 1} items'"), "4 items");
  EXPECT_EQ(ex("f'{3.14159:.2f}'"), "3.14");
  EXPECT_EQ(ex("f'{{literal}}'"), "{literal}");
  EXPECT_EQ(ex("f'{n}{n}{n}'"), "333");
}

// ---- modules ----

TEST_F(PyTest, MathModule) {
  ev("import math");
  EXPECT_EQ(ex("math.sqrt(16)"), "4.0");
  EXPECT_EQ(ex("math.floor(2.7)"), "2");
  EXPECT_EQ(ex("math.ceil(2.2)"), "3");
  EXPECT_EQ(ex("round(math.pi, 5)"), "3.14159");
  EXPECT_EQ(ex("math.pow(2, 8)"), "256.0");
  EXPECT_THROW(ex("math.nonexistent(1)"), PyError);
}

TEST_F(PyTest, RandomModuleDeterministic) {
  ev("import random\nrandom.seed(7)\na = random.random()");
  ev("random.seed(7)\nb = random.random()");
  EXPECT_EQ(ex("a == b"), "True");
  EXPECT_EQ(ex("0.0 <= a < 1.0"), "True");
  ev("r = random.randint(1, 6)");
  EXPECT_EQ(ex("1 <= r <= 6"), "True");
  EXPECT_EQ(ex("random.choice([5]) == 5"), "True");
}

TEST_F(PyTest, UnknownModule) {
  EXPECT_THROW(ev("import numpy"), PyError);
}

// ---- state persistence (the paper's retain-vs-reinit semantics) ----

TEST_F(PyTest, StatePersistsAcrossEvals) {
  ev("counter = 0");
  ev("counter += 1");
  ev("counter += 1");
  EXPECT_EQ(ex("counter"), "2");
  ev("def helper():\n    return 'still here'");
  EXPECT_EQ(ex("helper()"), "still here");
}

TEST_F(PyTest, ResetClearsState) {
  ev("x = 42\ndef f():\n    return x");
  EXPECT_EQ(ex("x"), "42");
  in.reset();
  EXPECT_THROW(ex("x"), PyError);
  EXPECT_THROW(ex("f()"), PyError);
  // Builtins are back after reset.
  EXPECT_EQ(ex("len([1])"), "1");
}

TEST_F(PyTest, SetAndGetGlobals) {
  in.set_global("injected", integer(99));
  EXPECT_EQ(ex("injected + 1"), "100");
  ev("result = injected * 2");
  Ref r = in.get_global("result");
  ASSERT_TRUE(r != nullptr);
  EXPECT_EQ(as_int(r), 198);
  EXPECT_EQ(in.get_global("missing"), nullptr);
}

// ---- errors ----

TEST_F(PyTest, Errors) {
  EXPECT_THROW(ex("undefined_name"), PyError);
  EXPECT_THROW(ex("1 / 0"), PyError);
  EXPECT_THROW(ex("1 // 0"), PyError);
  EXPECT_THROW(ex("[1][5]"), PyError);
  EXPECT_THROW(ex("{'a': 1}['b']"), PyError);
  EXPECT_THROW(ex("'a' + 1"), PyError);
  EXPECT_THROW(ex("len(1)"), PyError);
  EXPECT_THROW(ev("if True\n    pass"), PyError);   // missing colon
  EXPECT_THROW(ev("def f(:\n    pass"), PyError);
  EXPECT_THROW(ev("  x = 1"), PyError);             // stray indent...
}

TEST_F(PyTest, ErrorMessagesNamed) {
  try {
    ex("nope");
    FAIL();
  } catch (const PyError& e) {
    EXPECT_NE(std::string(e.what()).find("NameError"), std::string::npos);
  }
  try {
    ex("1 / 0");
    FAIL();
  } catch (const PyError& e) {
    EXPECT_NE(std::string(e.what()).find("ZeroDivisionError"), std::string::npos);
  }
}

TEST_F(PyTest, StatementCounter) {
  uint64_t before = in.statements_executed();
  ev("x = 1\ny = 2");
  EXPECT_EQ(in.statements_executed(), before + 2);
}

TEST_F(PyTest, DictMethodsExtended) {
  ev("d = {'a': 1}");
  ev("d.update({'b': 2, 'a': 9})");
  EXPECT_EQ(ex("d['a']"), "9");
  EXPECT_EQ(ex("d.pop('b')"), "2");
  EXPECT_EQ(ex("'b' in d"), "False");
  EXPECT_EQ(ex("d.pop('zz', 'dflt')"), "dflt");
  EXPECT_THROW(ex("d.pop('zz')"), PyError);
  ev("e = d.copy()\ne['a'] = 1");
  EXPECT_EQ(ex("d['a']"), "9");  // copy is independent
  ev("d.clear()");
  EXPECT_EQ(ex("len(d)"), "0");
}

TEST_F(PyTest, AugmentedAssignVariants) {
  ev("x = 10\nx -= 3\nx *= 2\nx //= 4\nx **= 3\nx %= 5");
  // ((10-3)*2)//4 = 3; 3**3 = 27; 27%5 = 2.
  EXPECT_EQ(ex("x"), "2");
  ev("l = [1]\nl += [2, 3]");
  EXPECT_EQ(ex("l"), "[1, 2, 3]");
  ev("d2 = {'k': 1}\nd2['k'] += 5");
  EXPECT_EQ(ex("d2['k']"), "6");
}

TEST_F(PyTest, NegativePowerAndChainedCompare) {
  EXPECT_EQ(ex("10 ** 0"), "1");
  EXPECT_EQ(ex("0 <= 5 <= 10 <= 10"), "True");
  EXPECT_EQ(ex("1 == 1 == 2"), "False");
}

TEST_F(PyTest, WhitespaceAndCommentRobustness) {
  EXPECT_EQ(ev("# leading comment\n\n\nx = 1  # trailing\n\n", "x"), "1");
  EXPECT_EQ(ev("y = (1 +\n     2 +\n     3)", "y"), "6");   // implicit joining
  EXPECT_EQ(ev("z = 1 + \\\n    1", "z"), "2");              // explicit continuation
}

// ---- exceptions ----

TEST_F(PyTest, TryExceptCatches) {
  ev("try:\n    x = 1 / 0\nexcept:\n    x = 'caught'");
  EXPECT_EQ(ex("x"), "caught");
}

TEST_F(PyTest, TryExceptByType) {
  ev(
      "def probe(v):\n"
      "    try:\n"
      "        return 10 / v\n"
      "    except ZeroDivisionError:\n"
      "        return -1\n");
  EXPECT_EQ(ex("probe(2)"), "5.0");
  EXPECT_EQ(ex("probe(0)"), "-1");
}

TEST_F(PyTest, TryExceptAsBindsMessage) {
  ev("try:\n    nope\nexcept NameError as e:\n    msg = e");
  EXPECT_NE(ex("msg").find("NameError"), std::string::npos);
}

TEST_F(PyTest, TryExceptWrongTypeRethrows) {
  EXPECT_THROW(ev("try:\n    1 / 0\nexcept NameError:\n    pass"), PyError);
}

TEST_F(PyTest, MultipleHandlers) {
  ev(
      "def classify(code):\n"
      "    try:\n"
      "        if code == 1:\n"
      "            raise ValueError('v')\n"
      "        raise KeyError('k')\n"
      "    except ValueError:\n"
      "        return 'value'\n"
      "    except KeyError:\n"
      "        return 'key'\n");
  EXPECT_EQ(ex("classify(1)"), "value");
  EXPECT_EQ(ex("classify(2)"), "key");
}

TEST_F(PyTest, FinallyAlwaysRuns) {
  ev("log = []\ntry:\n    log.append('body')\nfinally:\n    log.append('fin')");
  EXPECT_EQ(ex("log"), "['body', 'fin']");
  // On error paths too.
  ev("log2 = []");
  EXPECT_THROW(ev("try:\n    1 / 0\nfinally:\n    log2.append('fin')"), PyError);
  EXPECT_EQ(ex("log2"), "['fin']");
  // And through return.
  ev(
      "order = []\n"
      "def f():\n"
      "    try:\n"
      "        return 'ret'\n"
      "    finally:\n"
      "        order.append('fin')\n");
  EXPECT_EQ(ex("f()"), "ret");
  EXPECT_EQ(ex("order"), "['fin']");
}

TEST_F(PyTest, RaiseCustomMessage) {
  try {
    ev("raise ValueError('bad input 42')");
    FAIL();
  } catch (const PyError& e) {
    EXPECT_STREQ(e.what(), "ValueError: bad input 42");
  }
  EXPECT_THROW(ev("raise RuntimeError"), PyError);
}

TEST_F(PyTest, TryWithoutHandlerIsSyntaxError) {
  EXPECT_THROW(ev("try:\n    pass"), PyError);
}

// ---- a realistic leaf-task fragment (Monte Carlo partial sum) ----

TEST_F(PyTest, MonteCarloFragment) {
  const char* code =
      "import random\n"
      "random.seed(42)\n"
      "inside = 0\n"
      "n = 1000\n"
      "for i in range(n):\n"
      "    x = random.random()\n"
      "    y = random.random()\n"
      "    if x * x + y * y <= 1.0:\n"
      "        inside += 1\n"
      "pi_est = 4.0 * inside / n\n";
  std::string result = ev(code, "pi_est");
  double pi = std::stod(result);
  EXPECT_GT(pi, 2.8);
  EXPECT_LT(pi, 3.5);
}

}  // namespace
}  // namespace ilps::py
