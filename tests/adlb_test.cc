// ADLB: task queueing and matching, targeting, priorities, cross-server
// rebalancing, distributed termination, and the data store.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "adlb/client.h"
#include "adlb/server.h"
#include "common/error.h"
#include "common/rng.h"
#include "mpi/comm.h"

namespace ilps::adlb {
namespace {

// Runs a world where every server rank serves and every client rank runs
// `client_main`. Returns after global termination.
void run_cfg(Config cfg, int nclients, const std::function<void(Client&)>& client_main) {
  mpi::World world(nclients + cfg.nservers);
  world.run([&](mpi::Comm& comm) {
    if (is_server(comm.rank(), comm.size(), cfg)) {
      Server server(comm, cfg);
      server.serve();
    } else {
      Client client(comm, cfg);
      client_main(client);
    }
  });
}

void run(int nclients, int nservers, const std::function<void(Client&)>& client_main,
         int ntypes = 2) {
  Config cfg;
  cfg.nservers = nservers;
  cfg.ntypes = ntypes;
  run_cfg(cfg, nclients, client_main);
}

// Like run(), but with the write-behind datum pipeline off (window 1):
// every data op is a blocking RPC whose error throws at the call site.
// Tests that pin exact throw sites use this; with pipelining on, batched
// failures surface later, as a deferred DataError at the next sync point
// (see AdlbData.PipelinedErrorsSurfaceDeferred).
void run_sync(int nclients, int nservers, const std::function<void(Client&)>& client_main,
              int ntypes = 2) {
  Config cfg;
  cfg.nservers = nservers;
  cfg.ntypes = ntypes;
  cfg.pipeline_window = 1;
  run_cfg(cfg, nclients, client_main);
}

// A client that only drains work of one type until shutdown, recording
// payloads.
void drain(Client& client, int type, std::vector<std::string>& sink, std::mutex& mu) {
  while (auto unit = client.get(type)) {
    std::lock_guard<std::mutex> lock(mu);
    sink.push_back(unit->payload);
  }
}

TEST(Layout, RoleMapping) {
  Config cfg;
  cfg.nservers = 2;
  // size 6: ranks 0..3 clients, 4..5 servers.
  EXPECT_FALSE(is_server(3, 6, cfg));
  EXPECT_TRUE(is_server(4, 6, cfg));
  EXPECT_TRUE(is_server(5, 6, cfg));
  EXPECT_EQ(num_clients(6, cfg), 4);
  EXPECT_EQ(server_rank(0, 6, cfg), 4);
  EXPECT_EQ(home_server(0, 6, cfg), 4);
  EXPECT_EQ(home_server(1, 6, cfg), 5);
  EXPECT_EQ(home_server(2, 6, cfg), 4);
  // Owner server is stable and in range.
  for (int64_t id : {0LL, 1LL, 12345LL, -7LL}) {
    int s = owner_server(id, 6, cfg);
    EXPECT_TRUE(s == 4 || s == 5);
    EXPECT_EQ(s, owner_server(id, 6, cfg));
  }
}

TEST(Adlb, EmptyRunTerminates) {
  // Clients immediately ask for work; servers detect quiescence.
  run(3, 1, [](Client& c) { EXPECT_FALSE(c.get(kTypeWork).has_value()); });
}

TEST(Adlb, EmptyRunTerminatesManyServers) {
  run(5, 3, [](Client& c) { EXPECT_FALSE(c.get(kTypeWork).has_value()); });
}

TEST(Adlb, PutThenGetSelf) {
  run(1, 1, [](Client& c) {
    c.put({kTypeWork, 0, kAnyRank, kAnyRank, "task-a"});
    auto unit = c.get(kTypeWork);
    ASSERT_TRUE(unit.has_value());
    EXPECT_EQ(unit->payload, "task-a");
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(Adlb, WorkDistributedToOtherClients) {
  std::mutex mu;
  std::vector<std::string> got;
  run(4, 1, [&](Client& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 12; ++i) {
        c.put({kTypeWork, 0, kAnyRank, kAnyRank, "t" + std::to_string(i)});
      }
    }
    drain(c, kTypeWork, got, mu);
  });
  EXPECT_EQ(got.size(), 12u);
  std::set<std::string> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), 12u);  // every task delivered exactly once
}

TEST(Adlb, CrossServerRebalancing) {
  // Producer is on server A; the only consumers are homed on server B, so
  // every unit must travel through the hungry/rebalance protocol. (Even
  // ranks park instead of consuming: letting them race for the work made
  // the cross-server delivery count timing-dependent.)
  std::mutex mu;
  std::vector<std::string> got;
  std::atomic<int> consumer_hits{0};
  run(4, 2, [&](Client& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        c.put({kTypeWork, 0, kAnyRank, kAnyRank, "x" + std::to_string(i)});
      }
      // Rank 0 does not consume; it parks and waits for shutdown.
      EXPECT_FALSE(c.get(kTypeControl).has_value());
      return;
    }
    if (c.rank() % 2 == 0) {
      // Even ranks share server A with the producer; park them too.
      EXPECT_FALSE(c.get(kTypeControl).has_value());
      return;
    }
    while (auto unit = c.get(kTypeWork)) {
      std::lock_guard<std::mutex> lock(mu);
      got.push_back(unit->payload);
      consumer_hits.fetch_add(1);  // clients of server B
    }
  });
  EXPECT_EQ(got.size(), 20u);
  // Odd ranks are homed on the second server; all work originated on the
  // first, so every delivery crossed servers.
  EXPECT_EQ(consumer_hits.load(), 20);
}

TEST(Adlb, TargetedWork) {
  std::mutex mu;
  std::vector<std::pair<int, std::string>> got;
  run(3, 2, [&](Client& c) {
    if (c.rank() == 0) {
      c.put({kTypeWork, 0, 2, kAnyRank, "for-two"});
      c.put({kTypeWork, 0, 1, kAnyRank, "for-one"});
      c.put({kTypeWork, 0, 0, kAnyRank, "for-zero"});
    }
    while (auto unit = c.get(kTypeWork)) {
      std::lock_guard<std::mutex> lock(mu);
      got.emplace_back(c.rank(), unit->payload);
    }
  });
  ASSERT_EQ(got.size(), 3u);
  for (const auto& [rank, payload] : got) {
    if (payload == "for-two") {
      EXPECT_EQ(rank, 2);
    }
    if (payload == "for-one") {
      EXPECT_EQ(rank, 1);
    }
    if (payload == "for-zero") {
      EXPECT_EQ(rank, 0);
    }
  }
}

TEST(Adlb, PriorityOrdering) {
  // A single consumer: higher-priority work must be delivered first once
  // queued. Queue everything before the consumer starts taking.
  std::vector<std::string> order;
  run(1, 1, [&](Client& c) {
    c.put({kTypeWork, 1, kAnyRank, kAnyRank, "low"});
    c.put({kTypeWork, 10, kAnyRank, kAnyRank, "high"});
    c.put({kTypeWork, 5, kAnyRank, kAnyRank, "mid"});
    c.put({kTypeWork, 10, kAnyRank, kAnyRank, "high2"});
    while (auto unit = c.get(kTypeWork)) order.push_back(unit->payload);
  });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "high2");  // FIFO among equal priorities
  EXPECT_EQ(order[2], "mid");
  EXPECT_EQ(order[3], "low");
}

TEST(Adlb, TasksSpawningTasks) {
  // Each received task spawns two children until a depth limit; checks
  // dynamic workloads and that termination waits for the full tree.
  std::atomic<int> executed{0};
  run(4, 2, [&](Client& c) {
    if (c.rank() == 0) c.put({kTypeWork, 0, kAnyRank, kAnyRank, "0"});
    while (auto unit = c.get(kTypeWork)) {
      executed.fetch_add(1);
      int depth = std::stoi(unit->payload);
      if (depth < 5) {
        c.put({kTypeWork, 0, kAnyRank, kAnyRank, std::to_string(depth + 1)});
        c.put({kTypeWork, 0, kAnyRank, kAnyRank, std::to_string(depth + 1)});
      }
    }
  });
  EXPECT_EQ(executed.load(), 63);  // complete binary tree of depth 5
}

TEST(Adlb, InvalidPutsRejected) {
  run(1, 1, [](Client& c) {
    EXPECT_THROW(c.put({99, 0, kAnyRank, kAnyRank, "bad type"}), DataError);
    EXPECT_THROW(c.put({kTypeWork, 0, 42, kAnyRank, "bad target"}), DataError);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

// ---- data store ----

TEST(AdlbData, CreateStoreRetrieve) {
  run(2, 1, [](Client& c) {
    if (c.rank() == 0) {
      int64_t id = c.unique();
      c.create(id, DataType::kString);
      c.store(id, "payload");
      EXPECT_EQ(c.retrieve(id), "payload");
      EXPECT_TRUE(c.exists(id));
      EXPECT_EQ(c.type_of(id), DataType::kString);
      EXPECT_FALSE(c.exists(id + 999));
    }
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(AdlbData, UniqueIdsDisjointAcrossRanks) {
  std::mutex mu;
  std::set<int64_t> all;
  run(4, 2, [&](Client& c) {
    std::vector<int64_t> mine;
    for (int i = 0; i < 100; ++i) mine.push_back(c.unique());
    {
      std::lock_guard<std::mutex> lock(mu);
      for (int64_t id : mine) {
        EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
      }
    }
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
  EXPECT_EQ(all.size(), 400u);
}

TEST(AdlbData, ErrorPaths) {
  run_sync(1, 1, [](Client& c) {
    int64_t id = c.unique();
    EXPECT_THROW(c.retrieve(id), DataError);        // missing
    c.create(id, DataType::kInteger);
    EXPECT_THROW(c.create(id, DataType::kInteger), DataError);  // double create
    EXPECT_THROW(c.retrieve(id), DataError);        // not closed
    c.store(id, "1");
    EXPECT_THROW(c.store(id, "2"), DataError);      // double assignment
    EXPECT_THROW(c.close(id), DataError);           // already closed
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(AdlbData, VoidFutureCloseAndSubscribe) {
  run(1, 1, [](Client& c) {
    int64_t id = c.unique();
    c.create(id, DataType::kVoid);
    EXPECT_FALSE(c.subscribe(id, kTypeControl));
    c.close(id);
    // Notification arrives as a targeted control task with the id.
    auto unit = c.get(kTypeControl);
    ASSERT_TRUE(unit.has_value());
    EXPECT_EQ(unit->payload, std::to_string(id));
    // Subscribing after close reports already-closed.
    EXPECT_TRUE(c.subscribe(id, kTypeControl));
    EXPECT_FALSE(c.get(kTypeControl).has_value());
  });
}

TEST(AdlbData, SubscribeAcrossRanks) {
  run(2, 2, [](Client& c) {
    if (c.rank() == 0) {
      // Deterministic id so both ranks agree without communication.
      int64_t id = 4242;
      c.create(id, DataType::kInteger);
      c.put({kTypeWork, 0, 1, kAnyRank, std::to_string(id)});  // tell rank 1
      // Rank 1 may store (and close) before or after we subscribe; both
      // orders are legal. A notification arrives only in the second case.
      bool already_closed = c.subscribe(id, kTypeControl);
      if (!already_closed) {
        auto notif = c.get(kTypeControl);
        ASSERT_TRUE(notif.has_value());
        EXPECT_EQ(notif->payload, std::to_string(id));
      }
      EXPECT_EQ(c.retrieve(id), "77");
      EXPECT_FALSE(c.get(kTypeControl).has_value());
    } else {
      auto unit = c.get(kTypeWork);
      ASSERT_TRUE(unit.has_value());
      int64_t id = std::stoll(unit->payload);
      c.store(id, "77");
      EXPECT_FALSE(c.get(kTypeWork).has_value());
    }
  });
}

TEST(AdlbData, ReadRefcountDeletes) {
  run_sync(1, 1, [](Client& c) {
    int64_t id = c.unique();
    c.create(id, DataType::kString);
    c.store(id, "v");
    c.ref_incr(id, 2);  // refs: 3
    c.ref_incr(id, -3);
    EXPECT_FALSE(c.exists(id));
    EXPECT_THROW(c.ref_incr(id, -1), DataError);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(AdlbData, WriteRefcountClosesContainer) {
  run_sync(1, 1, [](Client& c) {
    int64_t id = c.unique();
    c.create(id, DataType::kContainer);
    c.write_incr(id, 1);  // writers: 2
    c.insert(id, "a", "1");
    c.insert(id, "b", "2");
    EXPECT_FALSE(c.subscribe(id, kTypeControl));
    c.write_incr(id, -1);
    c.insert(id, "c", "3");  // still open, one writer left
    c.write_incr(id, -1);    // closes
    auto notif = c.get(kTypeControl);
    ASSERT_TRUE(notif.has_value());
    auto entries = c.enumerate(id);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].first, "a");
    EXPECT_EQ(entries[2].second, "3");
    EXPECT_THROW(c.insert(id, "d", "4"), DataError);
    EXPECT_FALSE(c.get(kTypeControl).has_value());
  });
}

TEST(AdlbData, ContainerLookup) {
  run_sync(1, 1, [](Client& c) {
    int64_t id = c.unique();
    c.create(id, DataType::kContainer);
    c.insert(id, "k", "v");
    EXPECT_EQ(c.lookup(id, "k").value(), "v");
    EXPECT_FALSE(c.lookup(id, "nope").has_value());
    EXPECT_THROW(c.insert(id, "k", "dup"), DataError);
    int64_t scalar = c.unique();
    c.create(scalar, DataType::kInteger);
    EXPECT_THROW(c.insert(scalar, "k", "v"), DataError);
    EXPECT_THROW(c.lookup(scalar, "k"), DataError);
    EXPECT_THROW(c.enumerate(scalar), DataError);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

// With the write-behind pipeline on (the default), a batched sub-op's
// failure surfaces as a DataError at the next synchronous boundary rather
// than at the buffered call itself — and later independent sub-ops in the
// same batch still apply, exactly as separate RPCs would.
TEST(AdlbData, PipelinedErrorsSurfaceDeferred) {
  run(1, 1, [](Client& c) {
    int64_t a = c.unique();
    int64_t b = c.unique();
    c.create(a, DataType::kInteger);
    c.store(a, "1");
    c.store(a, "2");  // double assignment: buffered, no throw here
    c.create(b, DataType::kInteger);
    c.store(b, "42");  // later sub-op, unaffected by the failure
    // The next sync point (any blocking RPC) surfaces the batched error.
    EXPECT_THROW(c.retrieve(a), DataError);
    // ... exactly once: the pipeline is clean again afterwards.
    EXPECT_EQ(c.retrieve(a), "1");
    EXPECT_EQ(c.retrieve(b), "42");
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

// Read-after-write through the pipeline: buffered ops ship before any
// synchronous RPC leaves the client, so a retrieve right after a buffered
// create/store sees the datum (same-client), and a put's consumer sees
// datums stored before the put (cross-client, via task causality).
TEST(AdlbData, PipelinedOpsVisibleAcrossClients) {
  run(2, 2, [](Client& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 40; ++i) {
        int64_t id = c.unique();
        c.create(id, DataType::kString);
        c.store(id, "v" + std::to_string(i));
        c.put({kTypeWork, 0, 1, kAnyRank, std::to_string(id) + ":" + std::to_string(i)});
      }
      EXPECT_FALSE(c.get(kTypeControl).has_value());
    } else {
      int seen = 0;
      while (auto unit = c.get(kTypeWork)) {
        auto colon = unit->payload.find(':');
        int64_t id = std::stoll(unit->payload.substr(0, colon));
        EXPECT_EQ(c.retrieve(id), "v" + unit->payload.substr(colon + 1));
        ++seen;
      }
      EXPECT_EQ(seen, 40);
    }
  });
}

// ---- property sweep: work conservation under random workloads ----

struct SweepParam {
  int nclients;
  int nservers;
  int tasks_per_client;
  uint64_t seed;
};

class AdlbSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AdlbSweep, EveryPutGotExactlyOnce) {
  auto p = GetParam();
  std::mutex mu;
  std::vector<std::string> got;
  run(p.nclients, p.nservers, [&](Client& c) {
    Rng rng(p.seed + static_cast<uint64_t>(c.rank()));
    for (int i = 0; i < p.tasks_per_client; ++i) {
      WorkUnit unit;
      unit.type = kTypeWork;
      unit.priority = static_cast<int>(rng.next_below(5));
      // A third of tasks are targeted at a random client.
      unit.target = rng.next_below(3) == 0
                        ? static_cast<int>(rng.next_below(static_cast<uint64_t>(p.nclients)))
                        : kAnyRank;
      unit.payload = std::to_string(c.rank()) + ":" + std::to_string(i);
      c.put(unit);
    }
    while (auto unit = c.get(kTypeWork)) {
      std::lock_guard<std::mutex> lock(mu);
      got.push_back(unit->payload);
    }
  });
  size_t expected = static_cast<size_t>(p.nclients) * static_cast<size_t>(p.tasks_per_client);
  EXPECT_EQ(got.size(), expected);
  std::set<std::string> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AdlbSweep,
    ::testing::Values(SweepParam{1, 1, 50, 1}, SweepParam{2, 1, 40, 2}, SweepParam{4, 1, 30, 3},
                      SweepParam{4, 2, 30, 4}, SweepParam{6, 3, 20, 5}, SweepParam{8, 2, 25, 6},
                      SweepParam{3, 3, 30, 7}, SweepParam{8, 4, 15, 8}));

// Repeated runs of the same dynamic workload terminate reliably (stress
// for the termination protocol's races).
TEST(Adlb, TerminationStress) {
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> executed{0};
    run(3, 2, [&](Client& c) {
      if (c.rank() == 0) {
        for (int i = 0; i < 5; ++i) c.put({kTypeWork, 0, kAnyRank, kAnyRank, "3"});
      }
      while (auto unit = c.get(kTypeWork)) {
        executed.fetch_add(1);
        int depth = std::stoi(unit->payload);
        if (depth > 0) c.put({kTypeWork, 0, kAnyRank, kAnyRank, std::to_string(depth - 1)});
      }
    });
    EXPECT_EQ(executed.load(), 20);
  }
}

}  // namespace
}  // namespace ilps::adlb
