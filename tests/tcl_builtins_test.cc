// List, string, dict, array and format built-ins.
#include <gtest/gtest.h>

#include "tcl/interp.h"

namespace ilps::tcl {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  std::string ev(std::string_view s) { return in.eval(s); }
  Interp in;
};

// ---- lists ----

TEST_F(BuiltinsTest, ListAndLlength) {
  EXPECT_EQ(ev("list a b c"), "a b c");
  EXPECT_EQ(ev("list {a b} c"), "{a b} c");
  EXPECT_EQ(ev("llength {a b c}"), "3");
  EXPECT_EQ(ev("llength {}"), "0");
  EXPECT_EQ(ev("llength [list]"), "0");
}

TEST_F(BuiltinsTest, ListPreservesEmptyAndSpecial) {
  ev("set l [list {} {a b} \\$x]");
  EXPECT_EQ(ev("llength $l"), "3");
  EXPECT_EQ(ev("lindex $l 0"), "");
  EXPECT_EQ(ev("lindex $l 1"), "a b");
  EXPECT_EQ(ev("lindex $l 2"), "$x");
}

TEST_F(BuiltinsTest, Lindex) {
  EXPECT_EQ(ev("lindex {a b c} 1"), "b");
  EXPECT_EQ(ev("lindex {a b c} end"), "c");
  EXPECT_EQ(ev("lindex {a b c} end-1"), "b");
  EXPECT_EQ(ev("lindex {a b c} 5"), "");
  EXPECT_EQ(ev("lindex {a b c} -1"), "");
}

TEST_F(BuiltinsTest, Lappend) {
  ev("set l {}");
  ev("lappend l a");
  ev("lappend l {b c} d");
  EXPECT_EQ(ev("set l"), "a {b c} d");
  EXPECT_EQ(ev("llength $l"), "3");
  // lappend creates the variable if needed.
  ev("lappend fresh x");
  EXPECT_EQ(ev("set fresh"), "x");
}

TEST_F(BuiltinsTest, Lrange) {
  EXPECT_EQ(ev("lrange {a b c d e} 1 3"), "b c d");
  EXPECT_EQ(ev("lrange {a b c} 0 end"), "a b c");
  EXPECT_EQ(ev("lrange {a b c} 2 1"), "");
  EXPECT_EQ(ev("lrange {a b c} -2 1"), "a b");
}

TEST_F(BuiltinsTest, LinsertLreplace) {
  EXPECT_EQ(ev("linsert {a c} 1 b"), "a b c");
  EXPECT_EQ(ev("linsert {a b} end c"), "a b c");
  EXPECT_EQ(ev("linsert {a b} 0 z"), "z a b");
  EXPECT_EQ(ev("lreplace {a b c d} 1 2 X Y Z"), "a X Y Z d");
  EXPECT_EQ(ev("lreplace {a b c} 0 0"), "b c");
}

TEST_F(BuiltinsTest, Lsearch) {
  EXPECT_EQ(ev("lsearch {a b c} b"), "1");
  EXPECT_EQ(ev("lsearch {a b c} z"), "-1");
  EXPECT_EQ(ev("lsearch {foo bar baz} b*"), "1");
  EXPECT_EQ(ev("lsearch -exact {foo b* bar} b*"), "1");
  EXPECT_EQ(ev("lsearch -all {a b a b} b"), "1 3");
}

TEST_F(BuiltinsTest, Lsort) {
  EXPECT_EQ(ev("lsort {banana apple cherry}"), "apple banana cherry");
  EXPECT_EQ(ev("lsort -integer {10 2 33 4}"), "2 4 10 33");
  EXPECT_EQ(ev("lsort -real {1.5 0.2 3.0}"), "0.2 1.5 3.0");
  EXPECT_EQ(ev("lsort -decreasing -integer {1 3 2}"), "3 2 1");
  EXPECT_EQ(ev("lsort -unique {b a b c a}"), "a b c");
  EXPECT_EQ(ev("lsort {10 9}"), "10 9");  // ascii sort
}

TEST_F(BuiltinsTest, LsortCommand) {
  ev("proc bylen {a b} {expr [string length $a] - [string length $b]}");
  EXPECT_EQ(ev("lsort -command bylen {ccc a bb}"), "a bb ccc");
}

TEST_F(BuiltinsTest, LreverseLassign) {
  EXPECT_EQ(ev("lreverse {1 2 3}"), "3 2 1");
  EXPECT_EQ(ev("lassign {1 2 3 4} a b"), "3 4");
  EXPECT_EQ(ev("set a"), "1");
  EXPECT_EQ(ev("set b"), "2");
  EXPECT_EQ(ev("lassign {1} x y"), "");
  EXPECT_EQ(ev("set y"), "");
}

TEST_F(BuiltinsTest, Lmap) {
  EXPECT_EQ(ev("lmap x {1 2 3} {expr $x * $x}"), "1 4 9");
}

TEST_F(BuiltinsTest, ConcatJoinSplit) {
  EXPECT_EQ(ev("concat {a b} {c d}"), "a b c d");
  EXPECT_EQ(ev("concat a {} b"), "a b");
  EXPECT_EQ(ev("join {a b c} -"), "a-b-c");
  EXPECT_EQ(ev("join {a b c}"), "a b c");
  EXPECT_EQ(ev("split a,b,,c ,"), "a b {} c");
  EXPECT_EQ(ev("split abc {}"), "a b c");
  EXPECT_EQ(ev("split {a b}"), "a b");
}

// ---- dict ----

TEST_F(BuiltinsTest, DictBasics) {
  ev("set d [dict create a 1 b 2]");
  EXPECT_EQ(ev("dict get $d a"), "1");
  EXPECT_EQ(ev("dict get $d b"), "2");
  EXPECT_EQ(ev("dict exists $d a"), "1");
  EXPECT_EQ(ev("dict exists $d z"), "0");
  EXPECT_EQ(ev("dict size $d"), "2");
  EXPECT_EQ(ev("dict keys $d"), "a b");
  EXPECT_EQ(ev("dict values $d"), "1 2");
  EXPECT_THROW(ev("dict get $d missing"), TclError);
}

TEST_F(BuiltinsTest, DictSetUnsetMerge) {
  ev("set d [dict create a 1]");
  ev("dict set d b 2");
  ev("dict set d a 10");
  EXPECT_EQ(ev("dict get $d a"), "10");
  EXPECT_EQ(ev("dict size $d"), "2");
  ev("dict unset d a");
  EXPECT_EQ(ev("dict exists $d a"), "0");
  EXPECT_EQ(ev("dict merge {a 1 b 2} {b 3 c 4}"), "a 1 b 3 c 4");
}

TEST_F(BuiltinsTest, DictFor) {
  ev("set acc {}");
  ev("dict for {k v} {a 1 b 2} {append acc $k$v}");
  EXPECT_EQ(ev("set acc"), "a1b2");
}

// ---- string ----

TEST_F(BuiltinsTest, StringBasics) {
  EXPECT_EQ(ev("string length hello"), "5");
  EXPECT_EQ(ev("string length {}"), "0");
  EXPECT_EQ(ev("string index hello 1"), "e");
  EXPECT_EQ(ev("string index hello end"), "o");
  EXPECT_EQ(ev("string index hello 99"), "");
  EXPECT_EQ(ev("string range hello 1 3"), "ell");
  EXPECT_EQ(ev("string range hello 2 end"), "llo");
  EXPECT_EQ(ev("string tolower HeLLo"), "hello");
  EXPECT_EQ(ev("string toupper hello"), "HELLO");
}

TEST_F(BuiltinsTest, StringTrim) {
  EXPECT_EQ(ev("string trim {  hi  }"), "hi");
  EXPECT_EQ(ev("string trimleft {  hi  }"), "hi  ");
  EXPECT_EQ(ev("string trimright {  hi  }"), "  hi");
  EXPECT_EQ(ev("string trim xxhixx x"), "hi");
}

TEST_F(BuiltinsTest, StringSearch) {
  EXPECT_EQ(ev("string first ll hello"), "2");
  EXPECT_EQ(ev("string first z hello"), "-1");
  EXPECT_EQ(ev("string first l hello 3"), "3");
  EXPECT_EQ(ev("string last l hello"), "3");
}

TEST_F(BuiltinsTest, StringCompareEqual) {
  EXPECT_EQ(ev("string compare a b"), "-1");
  EXPECT_EQ(ev("string compare b a"), "1");
  EXPECT_EQ(ev("string compare a a"), "0");
  EXPECT_EQ(ev("string equal a a"), "1");
  EXPECT_EQ(ev("string equal -nocase AbC abc"), "1");
}

TEST_F(BuiltinsTest, StringMatch) {
  EXPECT_EQ(ev("string match f* foo"), "1");
  EXPECT_EQ(ev("string match f?o foo"), "1");
  EXPECT_EQ(ev("string match f?o fooo"), "0");
  EXPECT_EQ(ev("string match {[a-c]x} bx"), "1");
  EXPECT_EQ(ev("string match {[a-c]x} dx"), "0");
  EXPECT_EQ(ev("string match {[^a-c]x} dx"), "1");
  EXPECT_EQ(ev("string match *.tcl pkg.tcl"), "1");
  EXPECT_EQ(ev("string match -nocase FOO* foobar"), "1");
  EXPECT_EQ(ev("string match {a\\*b} {a*b}"), "1");
  EXPECT_EQ(ev("string match {a\\*b} {aXb}"), "0");
  EXPECT_EQ(ev("string match {} {}"), "1");
  EXPECT_EQ(ev("string match * {}"), "1");
}

TEST_F(BuiltinsTest, StringMapRepeatReverseReplace) {
  EXPECT_EQ(ev("string map {a 1 b 2} abcab"), "12c12");
  EXPECT_EQ(ev("string map {ab X} abab"), "XX");
  EXPECT_EQ(ev("string repeat ab 3"), "ababab");
  EXPECT_EQ(ev("string reverse abc"), "cba");
  EXPECT_EQ(ev("string replace hello 1 3 XY"), "hXYo");
  EXPECT_EQ(ev("string replace hello 1 3"), "ho");
  EXPECT_EQ(ev("string cat a b c"), "abc");
}

TEST_F(BuiltinsTest, StringIs) {
  EXPECT_EQ(ev("string is integer 42"), "1");
  EXPECT_EQ(ev("string is integer 4.2"), "0");
  EXPECT_EQ(ev("string is double 4.2"), "1");
  EXPECT_EQ(ev("string is double abc"), "0");
  EXPECT_EQ(ev("string is alpha abc"), "1");
  EXPECT_EQ(ev("string is digit 123"), "1");
  EXPECT_EQ(ev("string is boolean yes"), "1");
  EXPECT_EQ(ev("string is space { }"), "1");
}

// ---- format / scan ----

TEST_F(BuiltinsTest, Format) {
  EXPECT_EQ(ev("format %d 42"), "42");
  EXPECT_EQ(ev("format {%05d} 42"), "00042");
  EXPECT_EQ(ev("format {%.3f} 3.14159"), "3.142");
  EXPECT_EQ(ev("format {%s-%s} a b"), "a-b");
  EXPECT_EQ(ev("format {%x} 255"), "ff");
}

TEST_F(BuiltinsTest, Scan) {
  EXPECT_EQ(ev("scan {10 3.5 abc} {%d %f %s} a b c"), "3");
  EXPECT_EQ(ev("set a"), "10");
  EXPECT_EQ(ev("set b"), "3.5");
  EXPECT_EQ(ev("set c"), "abc");
  EXPECT_EQ(ev("scan {xyz} {%d} q"), "0");
}

// ---- array ----

TEST_F(BuiltinsTest, ArrayOps) {
  ev("set a(x) 1; set a(y) 2");
  EXPECT_EQ(ev("array exists a"), "1");
  EXPECT_EQ(ev("array exists nope"), "0");
  EXPECT_EQ(ev("array size a"), "2");
  EXPECT_EQ(ev("lsort [array names a]"), "x y");
  ev("array set b {k1 v1 k2 v2}");
  EXPECT_EQ(ev("set b(k1)"), "v1");
  EXPECT_EQ(ev("array names a x"), "x");
  ev("array unset a");
  EXPECT_EQ(ev("array exists a"), "0");
}

TEST_F(BuiltinsTest, ExprEdgeCases) {
  EXPECT_EQ(ev("expr {1 + [llength {a b c}]}"), "4");   // command inside expr
  EXPECT_EQ(ev("set n 5; expr {$n in {4 5 6}}"), "1");
  EXPECT_EQ(ev("expr {min(1.5, 2) + max(0, -1)}"), "1.5");
  EXPECT_EQ(ev("expr {\"b\" < \"c\" ? 10 : 20}"), "10");
}

TEST_F(BuiltinsTest, ArrayScalarConflicts) {
  ev("set s scalar");
  EXPECT_THROW(ev("set s(k) v"), TclError);
  ev("set a(k) v");
  EXPECT_THROW(ev("set a plain"), TclError);
  EXPECT_THROW(ev("set x $a"), TclError);
}

}  // namespace
}  // namespace ilps::tcl
