// Property test promised in DESIGN.md §5: the MiniTcl expr engine against
// a C++ reference evaluator on randomly generated integer expression
// trees (operators with Tcl floor-division semantics, parenthesization,
// unary minus, comparisons).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "tcl/interp.h"

namespace ilps::tcl {
namespace {

struct Node {
  char op;  // '#' literal, '-','+','*','/','%','<','=','n' (unary neg)
  int64_t value = 0;
  std::unique_ptr<Node> a, b;
};

// Generates a random tree. Divisor subtrees are literals in [1, 9] so
// division by zero never occurs.
std::unique_ptr<Node> gen(Rng& rng, int depth, bool divisor) {
  auto n = std::make_unique<Node>();
  if (divisor) {
    n->op = '#';
    n->value = rng.next_range(1, 9);
    return n;
  }
  if (depth == 0 || rng.next_below(3) == 0) {
    n->op = '#';
    n->value = rng.next_range(-50, 50);
    return n;
  }
  static const char ops[] = {'+', '-', '*', '/', '%', '<', '=', 'n'};
  n->op = ops[rng.next_below(sizeof ops)];
  n->a = gen(rng, depth - 1, false);
  if (n->op != 'n') {
    bool div = n->op == '/' || n->op == '%';
    n->b = gen(rng, depth - 1, div);
  }
  return n;
}

int64_t floor_div(int64_t a, int64_t b) {
  int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t floor_mod(int64_t a, int64_t b) {
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

int64_t reference_eval(const Node& n) {
  switch (n.op) {
    case '#': return n.value;
    case 'n': return -reference_eval(*n.a);
    case '+': return reference_eval(*n.a) + reference_eval(*n.b);
    case '-': return reference_eval(*n.a) - reference_eval(*n.b);
    case '*': return reference_eval(*n.a) * reference_eval(*n.b);
    case '/': return floor_div(reference_eval(*n.a), reference_eval(*n.b));
    case '%': return floor_mod(reference_eval(*n.a), reference_eval(*n.b));
    case '<': return reference_eval(*n.a) < reference_eval(*n.b) ? 1 : 0;
    case '=': return reference_eval(*n.a) == reference_eval(*n.b) ? 1 : 0;
  }
  return 0;
}

std::string render(const Node& n) {
  switch (n.op) {
    case '#':
      // Parenthesize negatives so "--5" never appears.
      return n.value < 0 ? "(" + std::to_string(n.value) + ")" : std::to_string(n.value);
    case 'n': return "(- " + render(*n.a) + ")";
    case '=': return "(" + render(*n.a) + " == " + render(*n.b) + ")";
    default:
      return "(" + render(*n.a) + " " + std::string(1, n.op) + " " + render(*n.b) + ")";
  }
}

class ExprFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzz, MatchesReferenceEvaluator) {
  Interp in;
  Rng rng(GetParam());
  for (int round = 0; round < 150; ++round) {
    auto tree = gen(rng, 4, false);
    std::string text = render(*tree);
    int64_t expected = reference_eval(*tree);
    EXPECT_EQ(in.expr(text), std::to_string(expected)) << "expr: " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// The same trees survive a trip through `expr {...}` at script level.
TEST(ExprFuzzScript, BracedExprAgrees) {
  Interp in;
  Rng rng(4242);
  for (int round = 0; round < 100; ++round) {
    auto tree = gen(rng, 3, false);
    std::string text = render(*tree);
    EXPECT_EQ(in.eval("expr {" + text + "}"), std::to_string(reference_eval(*tree)))
        << "expr: " << text;
  }
}

}  // namespace
}  // namespace ilps::tcl
