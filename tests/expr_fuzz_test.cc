// Property test promised in DESIGN.md §5: the MiniTcl expr engine against
// a C++ reference evaluator on randomly generated integer expression
// trees (operators with Tcl floor-division semantics, parenthesization,
// unary minus, comparisons).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "common/rng.h"
#include "runtime/runner.h"
#include "swift/compiler.h"
#include "tcl/interp.h"

namespace ilps::tcl {
namespace {

struct Node {
  char op;  // '#' literal, '-','+','*','/','%','<','=','n' (unary neg)
  int64_t value = 0;
  std::unique_ptr<Node> a, b;
};

// Generates a random tree. Divisor subtrees are literals in [1, 9] so
// division by zero never occurs.
std::unique_ptr<Node> gen(Rng& rng, int depth, bool divisor) {
  auto n = std::make_unique<Node>();
  if (divisor) {
    n->op = '#';
    n->value = rng.next_range(1, 9);
    return n;
  }
  if (depth == 0 || rng.next_below(3) == 0) {
    n->op = '#';
    n->value = rng.next_range(-50, 50);
    return n;
  }
  static const char ops[] = {'+', '-', '*', '/', '%', '<', '=', 'n'};
  n->op = ops[rng.next_below(sizeof ops)];
  n->a = gen(rng, depth - 1, false);
  if (n->op != 'n') {
    bool div = n->op == '/' || n->op == '%';
    n->b = gen(rng, depth - 1, div);
  }
  return n;
}

int64_t floor_div(int64_t a, int64_t b) {
  int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t floor_mod(int64_t a, int64_t b) {
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

int64_t reference_eval(const Node& n) {
  switch (n.op) {
    case '#': return n.value;
    case 'n': return -reference_eval(*n.a);
    case '+': return reference_eval(*n.a) + reference_eval(*n.b);
    case '-': return reference_eval(*n.a) - reference_eval(*n.b);
    case '*': return reference_eval(*n.a) * reference_eval(*n.b);
    case '/': return floor_div(reference_eval(*n.a), reference_eval(*n.b));
    case '%': return floor_mod(reference_eval(*n.a), reference_eval(*n.b));
    case '<': return reference_eval(*n.a) < reference_eval(*n.b) ? 1 : 0;
    case '=': return reference_eval(*n.a) == reference_eval(*n.b) ? 1 : 0;
  }
  return 0;
}

std::string render(const Node& n) {
  switch (n.op) {
    case '#':
      // Parenthesize negatives so "--5" never appears.
      return n.value < 0 ? "(" + std::to_string(n.value) + ")" : std::to_string(n.value);
    case 'n': return "(- " + render(*n.a) + ")";
    case '=': return "(" + render(*n.a) + " == " + render(*n.b) + ")";
    default:
      return "(" + render(*n.a) + " " + std::string(1, n.op) + " " + render(*n.b) + ")";
  }
}

class ExprFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzz, MatchesReferenceEvaluator) {
  Interp in;
  Rng rng(GetParam());
  for (int round = 0; round < 150; ++round) {
    auto tree = gen(rng, 4, false);
    std::string text = render(*tree);
    int64_t expected = reference_eval(*tree);
    EXPECT_EQ(in.expr(text), std::to_string(expected)) << "expr: " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// The same trees survive a trip through `expr {...}` at script level.
TEST(ExprFuzzScript, BracedExprAgrees) {
  Interp in;
  Rng rng(4242);
  for (int round = 0; round < 100; ++round) {
    auto tree = gen(rng, 3, false);
    std::string text = render(*tree);
    EXPECT_EQ(in.eval("expr {" + text + "}"), std::to_string(reference_eval(*tree)))
        << "expr: " << text;
  }
}

// ---- differential fuzz: direct eval vs compiled-unit execution ----
//
// The bytecode layer's contract (docs/interp.md): exec() of a compiled
// unit is observably identical to eval() of its source — same results,
// same errors, same commands_evaluated() deltas, same output. Randomly
// generated scripts exercise the specialized opcodes (set/incr/expr/
// if/while/for/foreach/catch), the compiled-expression IR, the expr
// template guard (numeric and non-numeric leaf values), procs, and error
// paths (divide by zero, unset variables, non-boolean conditions).

struct Outcome {
  bool error = false;
  std::string result;  // last result, or the error message
  std::string output;  // puts capture
  uint64_t cmds = 0;   // commands_evaluated delta
};

Outcome run_script(const std::string& prog, bool compiled) {
  Interp in;
  in.set_compile_enabled(compiled);
  Outcome o;
  in.set_puts_handler([&o](std::string_view t, bool nl) {
    o.output.append(t);
    if (nl) o.output += '\n';
  });
  uint64_t before = in.commands_evaluated();
  try {
    if (compiled) {
      auto unit = in.compile(prog);
      o.result = in.exec(*unit);
    } else {
      o.result = in.eval(prog);
    }
  } catch (const TclError& e) {
    o.error = true;
    o.result = e.what();
  }
  o.cmds = in.commands_evaluated() - before;
  return o;
}

// Renders a tree, substituting $pool-variable reads for some literals —
// and, rarely, an unset variable so error parity is exercised too.
std::string render_vars(const Node& n, const std::vector<std::string>& pool, Rng& rng) {
  if (n.op == '#') {
    if (!pool.empty() && rng.next_below(3) == 0) {
      return "$" + pool[rng.next_below(pool.size())];
    }
    if (rng.next_below(40) == 0) return "$fuzz_unset";
    return n.value < 0 ? "(" + std::to_string(n.value) + ")" : std::to_string(n.value);
  }
  if (n.op == 'n') return "(- " + render_vars(*n.a, pool, rng) + ")";
  std::string op = n.op == '=' ? "==" : std::string(1, n.op);
  return "(" + render_vars(*n.a, pool, rng) + " " + op + " " + render_vars(*n.b, pool, rng) + ")";
}

std::string gen_script(Rng& rng) {
  std::ostringstream s;
  std::vector<std::string> pool;
  s << "set acc " << rng.next_range(-5, 5) << "\n";
  pool.push_back("acc");
  int nstmt = 3 + static_cast<int>(rng.next_below(8));
  for (int i = 0; i < nstmt; ++i) {
    auto tree = gen(rng, 2, false);
    std::string e = render_vars(*tree, pool, rng);
    std::string v = "v" + std::to_string(i);
    switch (rng.next_below(10)) {
      case 0:  // braced expr -> compiled IR
        s << "set " << v << " [expr {" << e << "}]\n";
        pool.push_back(v);
        break;
      case 1:  // unbraced expr -> template with eager leaves
        s << "set " << v << " [expr " << e << "]\n";
        pool.push_back(v);
        break;
      case 2:  // non-numeric value: template guard must splice, eq/ne IR
        s << "set " << v << " \"s" << rng.next_below(10) << "\"\n"
          << "set acc [expr {$acc + [string length $" << v << "]}]\n";
        break;
      case 3:
        s << "if {" << e << " % 2 == 0} { set acc [expr {$acc + 1}] } else { incr acc -1 }\n";
        break;
      case 4:
        s << "set w" << i << " 0\n"
          << "while {$w" << i << " < " << rng.next_range(1, 4) << "} { incr w" << i
          << "; set acc [expr {$acc + $w" << i << "}] }\n";
        break;
      case 5:
        s << "for {set k 0} {$k < " << rng.next_range(1, 4) << "} {incr k} { set acc [expr {$acc ^ "
          << e << "}] }\n";
        break;
      case 6:
        s << "foreach f" << i << " {1 2 3} { incr acc $f" << i << " }\n";
        break;
      case 7:  // error paths behind catch: divide by zero, unset var
        if (rng.next_below(2) == 0) {
          s << "catch {expr {" << e << " / 0}} e" << i << "\n";
        } else {
          s << "catch {set acc [expr {$acc + $fuzz_unset}]} e" << i << "\n";
        }
        s << "set acc [expr {$acc + [string length $e" << i << "]}]\n";
        break;
      case 8:
        s << "proc p" << i << " {a b} { return [expr {$a * $b + 1}] }\n"
          << "set acc [p" << i << " $acc " << rng.next_range(-3, 3) << "]\n";
        break;
      case 9:
        s << "puts \"acc=$acc\"\n";
        break;
    }
  }
  s << "set acc";
  return s.str();
}

class CompiledDifferentialFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompiledDifferentialFuzz, ExecMatchesEval) {
  Rng rng(GetParam() * 7919 + 17);
  for (int round = 0; round < 120; ++round) {
    std::string prog = gen_script(rng);
    Outcome direct = run_script(prog, /*compiled=*/false);
    Outcome comp = run_script(prog, /*compiled=*/true);
    EXPECT_EQ(direct.error, comp.error) << prog;
    EXPECT_EQ(direct.result, comp.result) << prog;
    EXPECT_EQ(direct.output, comp.output) << prog;
    EXPECT_EQ(direct.cmds, comp.cmds) << prog;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledDifferentialFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// The raw expression corpus from the reference-evaluator test also agrees
// across the two paths, braced (compiled IR) and unbraced (template).
TEST(CompiledDifferentialFuzz, ExpressionCorpusAgrees) {
  Rng rng(998877);
  for (int round = 0; round < 200; ++round) {
    auto tree = gen(rng, 4, false);
    std::string text = render(*tree);
    for (std::string prog : {"expr {" + text + "}", "expr " + text}) {
      Outcome direct = run_script(prog, false);
      Outcome comp = run_script(prog, true);
      EXPECT_EQ(direct.error, comp.error) << prog;
      EXPECT_EQ(direct.result, comp.result) << prog;
      EXPECT_EQ(direct.cmds, comp.cmds) << prog;
    }
  }
}

// ---- swift-verify soundness smoke over the fuzz corpus ----
//
// The analyzer's contract (src/analysis): it may only hard-error on
// programs that can never complete. Every generated program below is
// complete dataflow by construction, so analyze() must report zero
// errors — and must never crash — across the whole corpus.

TEST(AnalysisFuzz, NeverRejectsCompleteExpressionPrograms) {
  Rng rng(20260805);
  int analyzed = 0;
  for (int round = 0; round < 400; ++round) {
    auto tree = gen(rng, 4, false);
    std::string src = "int r = " + render(*tree) + ";\nprintf(\"r=%d\", r);\n";
    swift::Program prog;
    try {
      prog = swift::parse_swift(src);
    } catch (const swift::SwiftError&) {
      continue;  // a grammar gap is the parser's business, not the analyzer's
    }
    ++analyzed;
    analysis::Report report = analysis::analyze(prog);
    EXPECT_EQ(report.error_count(), 0u) << src << report.to_string();
  }
  EXPECT_GT(analyzed, 300);  // the corpus must actually exercise the analyzer
}

TEST(AnalysisFuzz, NeverRejectsCompleteDataflowChains) {
  // Random straight-line dataflow: every variable is assigned exactly
  // once from literals and previously assigned variables, then read.
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    std::ostringstream src;
    std::vector<std::string> vars;
    int nvars = 2 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < nvars; ++i) {
      auto tree = gen(rng, 2, false);
      std::string expr = render(*tree);
      if (!vars.empty() && rng.next_below(2) == 0) {
        expr = "(" + expr + " + " + vars[rng.next_below(vars.size())] + ")";
      }
      std::string name = "v" + std::to_string(i);
      src << "int " << name << " = " << expr << ";\n";
      vars.push_back(name);
    }
    src << "printf(\"last=%d\"";
    for (const auto& v : vars) src << ", " << v;
    src << ");\n";
    swift::Program prog;
    try {
      prog = swift::parse_swift(src.str());
    } catch (const swift::SwiftError&) {
      continue;
    }
    analysis::Report report = analysis::analyze(prog);
    EXPECT_EQ(report.error_count(), 0u) << src.str() << report.to_string();
  }
}

TEST(AnalysisFuzz, RuntimeCompletesWhatTheAnalyzerAccepted) {
  // End-to-end cross-check on a small subset: compile (which runs the
  // analyzer and would throw on a false rejection), run, and require the
  // runtime to finish with the reference value and nothing stuck.
  Rng rng(3131);
  runtime::Config cfg;
  cfg.workers = 1;
  int ran = 0;
  for (int round = 0; round < 6; ++round) {
    auto tree = gen(rng, 3, false);
    std::string text = render(*tree);
    std::string src = "int r = " + text + ";\nprintf(\"r=%d\", r);\n";
    std::string program;
    try {
      program = swift::compile(src);
    } catch (const swift::SwiftError& e) {
      // Only a non-analysis compiler limitation may be skipped here: a
      // swift-verify rejection of a complete program is a soundness bug.
      EXPECT_EQ(std::string(e.what()).find("swift-verify"), std::string::npos)
          << src << e.what();
      continue;
    }
    ++ran;
    auto result = runtime::run_program(cfg, program);
    EXPECT_EQ(result.unfired_rules, 0u) << src;
    EXPECT_TRUE(result.contains("r=" + std::to_string(reference_eval(*tree)))) << src;
  }
  EXPECT_GT(ran, 0);
}

}  // namespace
}  // namespace ilps::tcl
