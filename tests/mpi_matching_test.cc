// Matching-semantics suite for the tag-indexed mailbox. The index must be
// invisible: every test here states an MPI matching guarantee (per-pair
// FIFO, wildcard arrival order, envelope wildcards, probe consistency)
// that held for the old linear-scan mailbox and must keep holding.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.h"
#include "mpi/comm.h"

namespace ilps::mpi {
namespace {

// Self-sends from a single thread give a deterministic arrival order, so
// wildcard matching across buckets can be checked exactly.
TEST(Matching, WildcardFollowsArrivalOrderAcrossTags) {
  World w(1);
  w.run([](Comm& c) {
    c.send_str(0, 3, "first");
    c.send_str(0, 1, "second");
    c.send_str(0, 2, "third");
    // ANY matching must pop oldest arrival first, regardless of which
    // per-tag bucket each message landed in.
    EXPECT_EQ(ser::to_string(c.recv().data), "first");
    EXPECT_EQ(ser::to_string(c.recv().data), "second");
    EXPECT_EQ(ser::to_string(c.recv().data), "third");
  });
}

TEST(Matching, WildcardFollowsArrivalOrderAcrossSources) {
  World w(3);
  w.run([](Comm& c) {
    // Sends are eager: the message is in rank 0's mailbox before the
    // sender enters the barrier, so barriers sequence arrivals exactly.
    if (c.rank() == 1) c.send_str(0, 5, "from-1");
    c.barrier();
    if (c.rank() == 2) c.send_str(0, 6, "from-2");
    c.barrier();
    if (c.rank() == 0) {
      Message a = c.recv();
      EXPECT_EQ(a.source, 1);
      Message b = c.recv();
      EXPECT_EQ(b.source, 2);
    }
  });
}

TEST(Matching, ExactRecvDoesNotDisturbFifoOfOtherBuckets) {
  World w(1);
  w.run([](Comm& c) {
    c.send_str(0, 1, "a1");
    c.send_str(0, 2, "b1");
    c.send_str(0, 1, "a2");
    c.send_str(0, 2, "b2");
    // Take the tag-2 stream out of the middle...
    EXPECT_EQ(ser::to_string(c.recv(0, 2).data), "b1");
    // ...then wildcard: the oldest remaining message is a1.
    EXPECT_EQ(ser::to_string(c.recv().data), "a1");
    EXPECT_EQ(ser::to_string(c.recv().data), "a2");
    EXPECT_EQ(ser::to_string(c.recv().data), "b2");
  });
}

TEST(Matching, PerPairFifoWithInterleavedTags) {
  World w(2);
  constexpr int kPerTag = 100;
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < kPerTag; ++i) {
        ser::Writer odd = c.writer();
        odd.put_i32(i);
        c.send(1, 1, std::move(odd));
        ser::Writer even = c.writer();
        even.put_i32(i);
        c.send(1, 2, std::move(even));
      }
    } else {
      // Drain tag 1 fully first, then tag 2; each stream must be in
      // send order even though the sends interleaved the two tags.
      for (int tag = 1; tag <= 2; ++tag) {
        for (int i = 0; i < kPerTag; ++i) {
          Message m = c.recv(0, tag);
          EXPECT_EQ(m.reader().get_i32(), i) << "tag " << tag;
        }
      }
    }
  });
}

TEST(Matching, SourceWildcardWithExactTag) {
  World w(3);
  w.run([](Comm& c) {
    if (c.rank() == 1) c.send_str(0, 7, "x");
    c.barrier();
    if (c.rank() == 2) c.send_str(0, 7, "y");
    c.barrier();
    if (c.rank() == 0) {
      Message a = c.recv(ANY_SOURCE, 7);
      EXPECT_EQ(a.source, 1);
      Message b = c.recv(ANY_SOURCE, 7);
      EXPECT_EQ(b.source, 2);
    }
  });
}

// A probe's reported envelope must be immediately receivable: rank 0 is
// the only consumer, so between its iprobe and its try_recv nothing can
// steal the message, no matter how many producers are posting.
TEST(Matching, ProbeThenTryRecvConsistentUnderConcurrentPosts) {
  constexpr int kRanks = 8;
  constexpr int kPerSender = 100;
  World w(kRanks);
  w.run([](Comm& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < kPerSender; ++i) {
        ser::Writer msg = c.writer();
        msg.put_i32(i);
        c.send(0, c.rank(), std::move(msg));
      }
      return;
    }
    std::vector<int> next(kRanks, 0);
    int received = 0;
    while (received < (kRanks - 1) * kPerSender) {
      int src = -1;
      int tag = -1;
      if (!c.iprobe(ANY_SOURCE, ANY_TAG, &src, &tag)) {
        std::this_thread::yield();
        continue;
      }
      EXPECT_EQ(tag, src);  // senders tag with their own rank
      auto m = c.try_recv(src, tag);
      ASSERT_TRUE(m.has_value()) << "probed envelope vanished";
      EXPECT_EQ(m->source, src);
      EXPECT_EQ(m->tag, tag);
      // Per-sender FIFO holds even under interleaved wildcard probing.
      EXPECT_EQ(m->reader().get_i32(), next[static_cast<size_t>(src)]++);
      ++received;
    }
  });
}

TEST(Matching, TimedRecvTimesOutThenCatchesLateMessage) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      // Nothing queued: both the exact and the wildcard timed paths must
      // time out empty-handed.
      EXPECT_FALSE(c.recv_for(0.02, 1, 9).has_value());
      EXPECT_FALSE(c.recv_for(0.02).has_value());
      c.barrier();
      auto m = c.recv_for(10.0, 1, 9);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(ser::to_string(m->data), "late");
    } else {
      c.barrier();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      c.send_str(0, 9, "late");
    }
  });
}

// Regression (the ANY_TAG/reserved-tag bug): a plain recv racing a death
// notice must receive the user message and leave the notice queued. With
// the old matcher the wildcard consumed kTagFault and the ADLB server
// would never learn the rank died.
TEST(Matching, PlainWildcardRecvSkipsDeathNotice) {
  World w(3);
  FaultPlan plan;
  plan.kill_rank(/*rank=*/1, /*at_message=*/1);
  w.set_fault_plan(std::move(plan));
  w.run([](Comm& c) {
    if (c.rank() == 1) {
      c.send_str(0, 5, "never sent");  // dies here
      return;
    }
    if (c.rank() == 2) {
      c.send_str(0, 7, "user message");
      return;
    }
    // Wait until the death notice is definitely in the mailbox, so the
    // wildcard recv below genuinely races past it.
    while (!c.iprobe(1, kTagFault)) std::this_thread::yield();
    Message m = c.recv(ANY_SOURCE, ANY_TAG);
    EXPECT_EQ(m.source, 2);
    EXPECT_EQ(m.tag, 7);
    // The notice is still there for a fault-aware receiver.
    EXPECT_TRUE(c.iprobe(1, kTagFault));
    EXPECT_FALSE(c.try_recv(ANY_SOURCE, ANY_TAG).has_value());
    auto notice = c.try_recv(ANY_SOURCE, ANY_TAG_OR_FAULT);
    ASSERT_TRUE(notice.has_value());
    EXPECT_EQ(notice->source, 1);
    EXPECT_EQ(notice->tag, kTagFault);
  });
  std::vector<int> dead = w.dead_ranks();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 1);
}

TEST(Matching, FaultWildcardStillMatchesUserTags) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_str(1, 4, "normal");
    } else {
      Message m = c.recv(ANY_SOURCE, ANY_TAG_OR_FAULT);
      EXPECT_EQ(m.tag, 4);
      EXPECT_EQ(ser::to_string(m.data), "normal");
    }
  });
}

// A self-send posts while no receiver is registered, so the wakeup must
// be suppressed; the recv then finds the message without ever sleeping.
TEST(Stats, SelfSendSuppressesWakeup) {
  World w(1);
  w.run([](Comm& c) {
    c.send_str(0, 0, "x");
    c.recv();
  });
  TrafficStats s = w.stats();
  EXPECT_GE(s.wakeups_suppressed, 1u);
}

// Steady-state ping-pong on pooled writers: after warm-up every send
// draws a recycled buffer, so pool hits must dominate misses.
TEST(Stats, BufferPoolReusesAcrossExchanges) {
  World w(2);
  constexpr int kRounds = 64;
  w.run([](Comm& c) {
    int peer = 1 - c.rank();
    for (int i = 0; i < kRounds; ++i) {
      if (c.rank() == 0) {
        ser::Writer msg = c.writer();
        msg.put_i32(i);
        c.send(peer, 1, std::move(msg));
        Message m = c.recv(peer, 2);
        EXPECT_EQ(m.reader().get_i32(), i);
        c.recycle(std::move(m.data));
      } else {
        Message m = c.recv(peer, 1);
        int v = m.reader().get_i32();
        c.recycle(std::move(m.data));
        ser::Writer msg = c.writer();
        msg.put_i32(v);
        c.send(peer, 2, std::move(msg));
      }
    }
  });
  TrafficStats s = w.stats();
  EXPECT_GT(s.pool_hits, s.pool_misses);
}

}  // namespace
}  // namespace ilps::mpi
