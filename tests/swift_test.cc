// STC: Swift parsing, type checking, and compiled programs running end to
// end through Turbine/ADLB — including the paper's own code fragments.
#include <gtest/gtest.h>

#include "runtime/runner.h"
#include "swift/ast.h"
#include "swift/compiler.h"

namespace ilps::swift {
namespace {

runtime::RunResult run(const std::string& source, int workers = 2, int engines = 1,
                       int servers = 1) {
  runtime::Config cfg;
  cfg.engines = engines;
  cfg.workers = workers;
  cfg.servers = servers;
  return runtime::run_program(cfg, compile(source));
}

// ---- parser ----

TEST(SwiftParse, Declarations) {
  Program p = parse_swift("int x; float y = 1.5; string s = \"hi\"; boolean b = true;");
  ASSERT_EQ(p.main_statements.size(), 4u);
  EXPECT_EQ(p.main_statements[0]->kind, Stmt::Kind::kDecl);
  EXPECT_EQ(p.main_statements[0]->type, Type::kInt);
  EXPECT_EQ(p.main_statements[1]->value->kind, Expr::Kind::kFloatLit);
}

TEST(SwiftParse, LeafFunctionPaperSyntax) {
  // The exact shape from §III.A of the paper.
  Program p = parse_swift(R"(
    (int o) f (int i, int j) "my_package" "1.0" [
      "set <<o>> [ f <<i>> <<j>> ]"
    ];
  )");
  ASSERT_EQ(p.functions.size(), 1u);
  const FunctionDef& fn = p.functions[0];
  EXPECT_TRUE(fn.is_leaf);
  EXPECT_EQ(fn.name, "f");
  EXPECT_EQ(fn.package, "my_package");
  EXPECT_EQ(fn.package_version, "1.0");
  ASSERT_EQ(fn.outputs.size(), 1u);
  EXPECT_EQ(fn.outputs[0].name, "o");
  ASSERT_EQ(fn.inputs.size(), 2u);
  EXPECT_NE(fn.template_text.find("<<o>>"), std::string::npos);
}

TEST(SwiftParse, CompositeFunction) {
  Program p = parse_swift("(int r) double_it (int a) { r = a + a; }");
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_FALSE(p.functions[0].is_leaf);
  EXPECT_EQ(p.functions[0].body.size(), 1u);
}

TEST(SwiftParse, ForeachAndIf) {
  Program p = parse_swift(R"(
    foreach i in [0:9] {
      if (i > 4) { trace(i); } else { trace(0); }
    }
  )");
  ASSERT_EQ(p.main_statements.size(), 1u);
  EXPECT_EQ(p.main_statements[0]->kind, Stmt::Kind::kForeach);
  EXPECT_EQ(p.main_statements[0]->body[0]->kind, Stmt::Kind::kIf);
}

TEST(SwiftParse, MainBlock) {
  Program p = parse_swift("main { int x = 1; }");
  EXPECT_EQ(p.main_statements.size(), 1u);
}

TEST(SwiftParse, SyntaxErrors) {
  EXPECT_THROW(parse_swift("int x"), SwiftError);          // missing ;
  EXPECT_THROW(parse_swift("foreach i [0:1] {}"), SwiftError);  // missing in
  EXPECT_THROW(parse_swift("int x = ;"), SwiftError);
  EXPECT_THROW(parse_swift("(int o) f (int i) [ 42 ];"), SwiftError);
  EXPECT_THROW(parse_swift("if x { }"), SwiftError);
}

// ---- compile-time checks ----

TEST(SwiftCompile, UndefinedVariable) {
  EXPECT_THROW(compile("int x = y;"), SwiftError);
}

TEST(SwiftCompile, Redeclaration) {
  EXPECT_THROW(compile("int x; int x;"), SwiftError);
}

TEST(SwiftCompile, UndefinedFunction) {
  EXPECT_THROW(compile("int x = nothere(1);"), SwiftError);
}

TEST(SwiftCompile, TypeMismatch) {
  EXPECT_THROW(compile("int x = \"str\";"), SwiftError);
  EXPECT_THROW(compile("string s = 1 + 2;"), SwiftError);
  EXPECT_THROW(compile("int x = 1; string s = \"a\"; int y = x + s;"), SwiftError);
  EXPECT_THROW(compile("float f = 1.5; int x = f % 2;"), SwiftError);
}

TEST(SwiftCompile, ArityChecks) {
  const char* defs = "(int o) f (int i) [ \"set <<o>> <<i>>\" ];";
  EXPECT_THROW(compile(std::string(defs) + "int x = f();"), SwiftError);
  EXPECT_THROW(compile(std::string(defs) + "int x = f(1, 2);"), SwiftError);
}

TEST(SwiftCompile, TemplateUnknownPlaceholder) {
  EXPECT_THROW(compile("(int o) f (int i) [ \"set <<o>> <<bogus>>\" ];"), SwiftError);
}

TEST(SwiftCompile, OutputContainsMainProc) {
  std::string tcl = compile("int x = 1;");
  EXPECT_NE(tcl.find("proc swift:main"), std::string::npos);
  EXPECT_NE(tcl.find(runtime_prelude()), std::string::npos);
}

// ---- end-to-end execution ----

TEST(SwiftRun, HelloWorld) {
  auto result = run(R"(printf("hello swift");)");
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], "hello swift");
}

TEST(SwiftRun, ArithmeticDataflow) {
  auto result = run(R"(
    int x = 3;
    int y = x + 4;
    int z = y * y;
    printf("z=%d", z);
  )");
  EXPECT_TRUE(result.contains("z=49"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftRun, FloatsAndMixedArithmetic) {
  auto result = run(R"(
    float a = 1.5;
    float b = a * 2;
    float c = b + 0.25;
    printf("c=%.2f", c);
  )");
  EXPECT_TRUE(result.contains("c=3.25"));
}

TEST(SwiftRun, Strings) {
  auto result = run(R"(
    string a = "inter";
    string b = "language";
    string c = a + b;
    string d = strcat(c, " ", "scripting");
    printf("%s", d);
  )");
  EXPECT_TRUE(result.contains("interlanguage scripting"));
}

TEST(SwiftRun, Conversions) {
  auto result = run(R"(
    int n = toint("42");
    float f = tofloat("2.5");
    string s = tostring(n);
    printf("n=%d f=%.1f s=%s", n, f, s);
  )");
  EXPECT_TRUE(result.contains("n=42 f=2.5 s=42"));
}

TEST(SwiftRun, SprintfBuiltin) {
  auto result = run(R"(
    string s = sprintf("%05d!", 99);
    printf("%s", s);
  )");
  EXPECT_TRUE(result.contains("00099!"));
}

TEST(SwiftRun, BooleanOpsAndComparisons) {
  auto result = run(R"(
    int a = 5;
    boolean big = a > 3;
    boolean both = big && (a < 10);
    if (both) { printf("yes"); } else { printf("no"); }
  )");
  EXPECT_TRUE(result.contains("yes"));
}

TEST(SwiftRun, StringEquality) {
  auto result = run(R"(
    string a = "x y";
    string b = "x y";
    if (a == b) { printf("equal"); }
    if (a != "other") { printf("differs"); }
  )");
  EXPECT_TRUE(result.contains("equal"));
  EXPECT_TRUE(result.contains("differs"));
}

// The paper's §II.A dataflow fragment: statement order does not determine
// execution order; g blocks until f's output is stored.
TEST(SwiftRun, PaperDataflowFragment) {
  auto result = run(R"(
    (int o) f (int i) [ "set <<o>> [ expr <<i>> * 10 ]" ];
    (int o) g (int x, int k) [ "set <<o>> [ expr <<x>> + <<k>> ]" ];
    int x;
    x = f(3);
    int y1 = g(x, 1);
    int y2 = g(x, 2);
    printf("y1=%d y2=%d", y1, y2);
  )");
  EXPECT_TRUE(result.contains("y1=31 y2=32"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftRun, LeafWithPackage) {
  // The paper's §III.A example, with the package made available on all
  // ranks through the interp setup hook.
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  cfg.setup_interp = [](tcl::Interp& in) {
    in.package_ifneeded("my_package", "1.0",
                        "proc f {i j} { expr $i + $j }; package provide my_package 1.0");
  };
  std::string tcl = compile(R"(
    (int o) f (int i, int j) "my_package" "1.0" [
      "set <<o>> [ f <<i>> <<j>> ]"
    ];
    int r = f(20, 22);
    printf("r=%d", r);
  )");
  auto result = runtime::run_program(cfg, tcl);
  EXPECT_TRUE(result.contains("r=42"));
}

// The paper's Fig. 1 loop: concurrent pipelines of f and g.
TEST(SwiftRun, PaperForeachPipelines) {
  auto result = run(R"(
    (int o) f (int i) [ "set <<o>> [ expr <<i>> * <<i>> ]" ];
    (int o) g (int t) [ "set <<o>> [ expr <<t>> % 3 ]" ];
    foreach i in [0:9] {
      int t = f(i);
      int gt = g(t);
      if (gt == 0) { printf("g(%d) == 0", t); }
    }
  )", /*workers=*/4);
  // i*i % 3 == 0 for i in {0, 3, 6, 9}: t in {0, 9, 36, 81}.
  EXPECT_EQ(result.lines.size(), 4u);
  EXPECT_TRUE(result.contains("g(0) == 0"));
  EXPECT_TRUE(result.contains("g(9) == 0"));
  EXPECT_TRUE(result.contains("g(36) == 0"));
  EXPECT_TRUE(result.contains("g(81) == 0"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftRun, ForeachWithStepAndExpressions) {
  auto result = run(R"(
    int lo = 2;
    int hi = 10;
    foreach i in [lo:hi:4] {
      printf("i=%d", i);
    }
  )");
  EXPECT_EQ(result.lines.size(), 3u);  // 2, 6, 10
  EXPECT_TRUE(result.contains("i=6"));
}

TEST(SwiftRun, NestedForeach) {
  auto result = run(R"(
    foreach i in [0:1] {
      foreach j in [0:1] {
        printf("%d%d", i, j);
      }
    }
  )", /*workers=*/3, /*engines=*/2);
  EXPECT_EQ(result.lines.size(), 4u);
  EXPECT_TRUE(result.contains("01"));
  EXPECT_TRUE(result.contains("10"));
}

TEST(SwiftRun, CompositeFunctions) {
  auto result = run(R"(
    (int r) square (int a) { r = a * a; }
    (int r) sumsq (int a, int b) {
      int sa = square(a);
      int sb = square(b);
      r = sa + sb;
    }
    int v = sumsq(3, 4);
    printf("v=%d", v);
  )");
  EXPECT_TRUE(result.contains("v=25"));
}

TEST(SwiftRun, IfOnFutureCondition) {
  auto result = run(R"(
    (int o) slow_id (int i) [ "set <<o>> <<i>>" ];
    int x = slow_id(7);
    if (x > 5) {
      printf("big %d", x);
    } else {
      printf("small %d", x);
    }
  )");
  EXPECT_TRUE(result.contains("big 7"));
}

TEST(SwiftRun, ElseIfChain) {
  auto result = run(R"(
    int x = 5;
    if (x > 10) { printf("huge"); }
    else if (x > 3) { printf("medium"); }
    else { printf("small"); }
  )");
  EXPECT_TRUE(result.contains("medium"));
}

TEST(SwiftRun, PythonBuiltin) {
  auto result = run(R"(
    string res = python("y = 6 * 7", "y");
    printf("py=%s", res);
  )");
  EXPECT_TRUE(result.contains("py=42"));
}

TEST(SwiftRun, RBuiltin) {
  auto result = run(R"SW(
    string res = r("v <- c(2, 4, 6)", "mean(v)");
    printf("r=%s", res);
  )SW");
  EXPECT_TRUE(result.contains("r=4"));
}

TEST(SwiftRun, ShBuiltin) {
  auto result = run(R"(
    string out = sh("/bin/echo", "from", "the", "shell");
    printf("[%s]", out);
  )");
  EXPECT_TRUE(result.contains("[from the shell]"));
}

TEST(SwiftRun, InterlanguageChain) {
  // Python output feeds R input through Swift futures: the paper's
  // headline capability in one expression chain.
  auto result = run(R"SW(
    string py = python("v = 10 + 5", "v");
    string rexpr = strcat("x <- ", py, " * 2");
    string doubled = r(rexpr, "x");
    printf("chain=%s", doubled);
  )SW");
  EXPECT_TRUE(result.contains("chain=30"));
}

TEST(SwiftRun, TraceBuiltin) {
  auto result = run(R"(
    int x = 9;
    trace(x, x);
  )");
  EXPECT_TRUE(result.contains("trace: 9,9"));
}

TEST(SwiftRun, ManyEnginesManyServers) {
  auto result = run(R"(
    (int o) work (int i) [ "set <<o>> [ expr <<i>> + 100 ]" ];
    foreach i in [0:19] {
      int v = work(i);
      printf("v=%d", v);
    }
  )", /*workers=*/4, /*engines=*/2, /*servers=*/2);
  EXPECT_EQ(result.lines.size(), 20u);
  EXPECT_TRUE(result.contains("v=119"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftRun, MultiOutputAssignment) {
  auto result = run(R"SW(
    (int q, int rem) divmod (int a, int b) [
      "set <<q>> [ expr <<a>> / <<b>> ]
       set <<rem>> [ expr <<a>> % <<b>> ]"
    ];
    int q;
    int rem;
    q, rem = divmod(17, 5);
    printf("17 = %d*5 + %d", q, rem);
  )SW");
  EXPECT_TRUE(result.contains("17 = 3*5 + 2"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftRun, MultiOutputErrors) {
  const char* defs = R"SW(
    (int a, int b) two (int x) [ "set <<a>> 1
set <<b>> 2" ];
  )SW";
  EXPECT_THROW(compile(std::string(defs) + "int a; a = two(1);"), SwiftError);
  EXPECT_THROW(compile(std::string(defs) + "int a; int b; int c; a, b, c = two(1);"),
               SwiftError);
  EXPECT_THROW(compile(std::string(defs) + "int a; string s; a, s = two(1);"), SwiftError);
  EXPECT_THROW(compile("int a; int b; a, b = 5;"), SwiftError);
}

TEST(SwiftRun, StaticallyProvableDeadlockRejected) {
  // x is read but never assigned on any path: swift-verify rejects the
  // program before any rank spins up.
  EXPECT_THROW(compile(R"(
    int x;
    int y = x + 1;
    printf("y=%d", y);
  )"),
               SwiftError);
}

TEST(SwiftRun, DeadlockIsDetectedNotHung) {
  // x is assigned only on a branch the runtime never takes, so the static
  // pass must accept the program; the run still terminates (instead of
  // hanging) and the stuck-future report names x.
  runtime::Config cfg;
  cfg.deadlock_error = false;  // inspect the report instead of throwing
  auto result = runtime::run_program(cfg, compile(R"(
    int c = toint("0");
    int x;
    if (c == 1) {
      x = 1;
    }
    int y = x + 1;
    printf("y=%d", y);
  )"));
  EXPECT_GE(result.unfired_rules, 1u);
  EXPECT_FALSE(result.contains("y="));
  ASSERT_FALSE(result.stuck.empty());
  bool names_x = false;
  for (const auto& rule : result.stuck) {
    for (const auto& input : rule.waiting) names_x = names_x || input.name == "x";
  }
  EXPECT_TRUE(names_x);
}

TEST(SwiftRun, DeadlockThrowsTypedErrorByDefault) {
  try {
    run(R"(
      int c = toint("0");
      int x;
      if (c == 1) {
        x = 1;
      }
      int y = x + 1;
      printf("y=%d", y);
    )");
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("\"x\""), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace ilps::swift
