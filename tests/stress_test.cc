// Heavier integration runs: large fan-outs, deep recursion through the
// distributed stack, mixed-language storms, and failure injection at
// scale. These guard the termination protocol and rule engine against
// races that only appear under load.
#include <gtest/gtest.h>

#include <set>

#include "runtime/runner.h"
#include "swift/compiler.h"

namespace ilps {
namespace {

TEST(Stress, ThousandLeafTasks) {
  runtime::Config cfg;
  cfg.engines = 2;
  cfg.workers = 6;
  cfg.servers = 2;
  auto result = runtime::run_program(cfg, swift::compile(R"SW(
    (int o) f (int i) [ "set <<o>> [ expr <<i>> * 2 + 1 ]" ];
    foreach i in [0:999] {
      int v = f(i);
      if (v == 1999) { printf("last=%d", v); }
    }
  )SW"));
  EXPECT_TRUE(result.contains("last=1999"));
  EXPECT_EQ(result.unfired_rules, 0u);
  EXPECT_GE(result.worker_stats.tasks, 1000u);
}

TEST(Stress, WideArrayFillAndDrain) {
  runtime::Config cfg;
  cfg.engines = 2;
  cfg.workers = 4;
  cfg.servers = 2;
  auto result = runtime::run_program(cfg, swift::compile(R"SW(
    int A[];
    foreach i in [0:299] { A[i] = i * i; }
    int n = size(A);
    printf("n=%d", n);
    foreach v, i in A {
      if (i == 299) { printf("tail=%d", v); }
    }
  )SW"));
  EXPECT_TRUE(result.contains("n=300"));
  EXPECT_TRUE(result.contains("tail=89401"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(Stress, RecursiveTaskTreeThroughAdlb) {
  // Composite recursion expands a task tree at run time: each node either
  // splits or computes a leaf value.
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 4;
  cfg.servers = 1;
  auto result = runtime::run_program(cfg, swift::compile(R"SW(
    (int o) leafv (int d) [ "set <<o>> 1" ];
    (int r) node (int depth) {
      if (depth == 0) {
        r = leafv(depth);
      } else {
        int a = node(depth - 1);
        int b = node(depth - 1);
        r = a + b;
      }
    }
    int total = node(7);
    printf("leaves=%d", total);
  )SW"));
  EXPECT_TRUE(result.contains("leaves=128"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(Stress, MixedLanguageStorm) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 6;
  cfg.servers = 1;
  auto result = runtime::run_program(cfg, swift::compile(R"SW(
    foreach i in [0:24] {
      string istr = tostring(i);
      string pycode = strcat("x = ", istr, " * 2");
      string py = python(pycode, "x");
      string rcode = strcat("y <- ", py, " + 1");
      string rr = r(rcode, "y");
      printf("i=%d -> %s", i, rr);
    }
  )SW"));
  EXPECT_EQ(result.lines.size(), 25u);
  EXPECT_TRUE(result.contains("i=24 -> 49"));
  EXPECT_EQ(result.worker_stats.python_evals, 25u);
  EXPECT_EQ(result.worker_stats.r_evals, 25u);
}

TEST(Stress, TerminationUnderRepeatedRacyLayouts) {
  // Small, racy config run repeatedly — the quiescence protocol must
  // conclude every time.
  const std::string program = swift::compile(R"SW(
    (int o) f (int i) [ "set <<o>> <<i>>" ];
    foreach i in [0:9] {
      int v = f(i);
      trace(v);
    }
  )SW");
  for (int round = 0; round < 15; ++round) {
    runtime::Config cfg;
    cfg.engines = 1 + round % 3;
    cfg.workers = 1 + round % 4;
    cfg.servers = 1 + round % 2;
    auto result = runtime::run_program(cfg, program);
    EXPECT_EQ(result.lines.size(), 10u) << "round " << round;
    EXPECT_EQ(result.unfired_rules, 0u) << "round " << round;
  }
}

TEST(Stress, ErrorInOneTaskAbortsCleanly) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 4;
  cfg.servers = 1;
  // 50 good tasks and one that throws deep inside a worker.
  std::string program;
  for (int i = 0; i < 50; ++i) program += "turbine::put_work {set _ 1}\n";
  program += "turbine::put_work {error injected_failure}\n";
  EXPECT_THROW(runtime::run_program(cfg, program), Error);
}

TEST(Stress, ManyIndependentDataflowVariables) {
  // 400 futures with interleaving stores and arithmetic rules.
  std::string src;
  for (int i = 0; i < 200; ++i) {
    src += "int a" + std::to_string(i) + " = " + std::to_string(i) + ";\n";
    src += "int b" + std::to_string(i) + " = a" + std::to_string(i) + " + 1;\n";
  }
  src += "printf(\"b199=%d\", b199);\n";
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 2;
  auto result = runtime::run_program(cfg, swift::compile(src));
  EXPECT_TRUE(result.contains("b199=200"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

}  // namespace
}  // namespace ilps
