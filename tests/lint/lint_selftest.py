#!/usr/bin/env python3
"""Self-test for tools/ilps_lint.py: every rule must fire on its known-bad
fixture (at the expected count) and stay silent on the clean one.

Run directly or via ctest (`lint_selftest`):
  python3 tests/lint/lint_selftest.py
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "ilps_lint.py")

# fixture -> {rule: expected finding count}
EXPECT = {
    "bad_lock_across_send.cc": {"no-blocking-under-lock": 3},
    "bad_undocumented_relaxed.cc": {"undocumented-ordering": 2},
    "bad_raw_mutex.cc": {"raw-sync-outside-common": 4},
    "bad_lock_order_cycle.cc": {"lock-order-cycle": 1},
    "good_clean.cc": {},
}


def run_lint(fixture: str):
    proc = subprocess.run(
        [sys.executable, LINT, os.path.join(HERE, fixture)],
        capture_output=True,
        text=True,
    )
    counts: dict[str, int] = {}
    for line in proc.stdout.splitlines():
        for rule in (
            "no-blocking-under-lock",
            "undocumented-ordering",
            "raw-sync-outside-common",
            "lock-order-cycle",
        ):
            if f"[{rule}]" in line:
                counts[rule] = counts.get(rule, 0) + 1
    return proc.returncode, counts, proc.stdout


def main() -> int:
    failures = []
    for fixture, expected in EXPECT.items():
        rc, counts, out = run_lint(fixture)
        want_rc = 1 if expected else 0
        if rc != want_rc:
            failures.append(f"{fixture}: exit {rc}, want {want_rc}\n{out}")
        if counts != expected:
            failures.append(f"{fixture}: findings {counts}, want {expected}\n{out}")
        status = "ok" if not failures or failures[-1].split(":")[0] != fixture else "FAIL"
        print(f"  {fixture}: {status} ({counts or 'clean'})")

    # The acceptance bar: the real runtime sources are clean. Prefer the
    # compile db (exact TU list) and fall back to a src/ walk so the test
    # works from any build layout.
    db = os.path.join(REPO, "build", "compile_commands.json")
    if os.path.exists(db):
        args = [sys.executable, LINT, "-p", db]
    else:
        srcs = []
        for root, _dirs, files in os.walk(os.path.join(REPO, "src")):
            srcs.extend(
                os.path.join(root, f) for f in files if f.endswith((".cc", ".h"))
            )
        args = [sys.executable, LINT] + sorted(srcs)
    proc = subprocess.run(args, capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(f"src/ is not lint-clean:\n{proc.stdout}{proc.stderr}")
    print(f"  src/: {'ok' if proc.returncode == 0 else 'FAIL'}")

    if failures:
        print("\nlint_selftest: FAILED", file=sys.stderr)
        for f in failures:
            print(f, file=sys.stderr)
        return 1
    print("lint_selftest: all rules fire on bad fixtures; src/ clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
