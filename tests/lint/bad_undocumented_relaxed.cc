// ilps-lint fixture: explicit non-seq_cst memory orders without an
// `// ordering:` justification comment.
// Expected findings: undocumented-ordering (x2).
// Not compiled — consumed by tests/lint/lint_selftest.py only.
#include "common/sync.h"

ilps::Atomic<bool> g_flag{false};
ilps::Atomic<int> g_data{0};

void publish(int v) {
  g_data.store(v, std::memory_order_relaxed);  // BAD: no ordering comment
  g_flag.store(true, std::memory_order_seq_cst);
}

int consume() {
  while (!g_flag.load(std::memory_order_acquire)) {  // BAD: no ordering comment
  }
  if (g_flag.load()) return g_data.load();  // fine: seq_cst default is exempt
  return 0;
}

void publish_documented(int v) {
  g_data.store(v, std::memory_order_seq_cst);
  // ordering: release publishes g_data to whoever observes the flag set
  // (no acquire partner in this fixture; the comment is what matters).
  g_flag.store(true, std::memory_order_release);  // fine: documented
}
