// ilps-lint fixture: declared lock hierarchy with a cycle.
// Expected findings: lock-order-cycle (>= 1).
// Not compiled — consumed by tests/lint/lint_selftest.py only.
//
// The three edges below form a < b < c < a:
//
// ILPS_LOCK_ORDER: fixture.a < fixture.b
// ILPS_LOCK_ORDER: fixture.b < fixture.c
// ILPS_LOCK_ORDER: fixture.c < fixture.a
#include "common/sync.h"

ilps::Mutex a;
ilps::Mutex b;
ilps::Mutex c;
