// ilps-lint fixture: blocking transport calls inside a lock scope.
// Expected findings: no-blocking-under-lock (x3).
// Not compiled — consumed by tests/lint/lint_selftest.py only.
#include "common/sync.h"

void ship(ilps::Mutex& mu, Comm& comm, Client& client, Payload p) {
  ilps::LockGuard lock(mu);
  comm.send(1, kTagWork, p.bytes);  // BAD: send while holding `lock`
  client.put(p.unit);               // BAD: ADLB put while holding `lock`
}

void sync_world(ilps::Mutex& mu, Comm& comm) {
  ilps::UniqueLock lock(mu);
  comm.barrier();  // BAD: collective while holding `lock`
  lock.unlock();
  comm.barrier();  // fine: explicit unlock() window
}

void wait_ok(ilps::Mutex& mu, ilps::CondVar& cv, bool& ready) {
  ilps::UniqueLock lock(mu);
  while (!ready) cv.wait(lock);  // fine: CondVar waits release the lock
}
