// ilps-lint fixture: idiomatic annotated code that every rule must pass.
// Expected findings: none.
// Not compiled — consumed by tests/lint/lint_selftest.py only.
#include "common/sync.h"

// ILPS_LOCK_ORDER: fixture.outer < fixture.inner

class Box {
 public:
  void push(int v) {
    {
      ilps::LockGuard lock(mu_);
      items_.push_back(v);
    }
    cv_.notify_one();
  }

  int pop_send(Comm& comm) {
    int v = 0;
    {
      ilps::UniqueLock lock(mu_);
      while (items_.empty()) cv_.wait(lock);
      v = items_.back();
      items_.pop_back();
    }
    comm.send(0, kTagWork, v);  // lock scope closed above
    return v;
  }

  void mark() {
    // ordering: release pairs with the acquire load in marked(), so the
    // items pushed before mark() are visible to whoever observes it.
    flag_.store(true, std::memory_order_release);
  }

  bool marked() const {
    // ordering: acquire side of the mark() release — see mark().
    return flag_.load(std::memory_order_acquire);
  }

 private:
  ilps::Mutex mu_;
  std::vector<int> items_ ILPS_GUARDED_BY(mu_);
  ilps::CondVar cv_;
  ilps::Atomic<bool> flag_{false};
  ilps::RelaxedCounter pushes_;  // blessed wrapper: no comments needed
};
