// ilps-lint fixture: raw std:: sync primitives declared outside
// src/common instead of the annotated ilps:: wrappers.
// Expected findings: raw-sync-outside-common (x4).
// Not compiled — consumed by tests/lint/lint_selftest.py only.
#include <atomic>
#include <condition_variable>
#include <mutex>

struct Queue {
  std::mutex mu;                       // BAD: raw mutex outside src/common
  std::condition_variable cv;          // BAD: raw condvar
  std::atomic<bool> stop{false};       // BAD: raw atomic (use ilps::Atomic)
};

void drain(Queue& q) {
  std::lock_guard<std::mutex> lock(q.mu);  // BAD: raw lock scope
  q.stop.store(true);
}
