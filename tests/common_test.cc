#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/buffer.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/sync.h"
#include "common/timer.h"

namespace ilps {
namespace {

TEST(Buffer, RoundTripScalars) {
  ser::Writer w;
  w.put_i32(-42);
  w.put_u32(42u);
  w.put_i64(-1234567890123LL);
  w.put_u64(9876543210ULL);
  w.put_f64(3.25);
  w.put_u8(200);
  w.put_bool(true);
  w.put_bool(false);

  ser::Reader r(w.bytes());
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_u32(), 42u);
  EXPECT_EQ(r.get_i64(), -1234567890123LL);
  EXPECT_EQ(r.get_u64(), 9876543210ULL);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.25);
  EXPECT_EQ(r.get_u8(), 200);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, RoundTripStringsAndBytes) {
  ser::Writer w;
  w.put_str("hello world");
  w.put_str("");
  w.put_str(std::string("embedded\0null", 13));
  std::vector<std::byte> blob = {std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(blob);

  ser::Reader r(w.bytes());
  EXPECT_EQ(r.get_str(), "hello world");
  EXPECT_EQ(r.get_str(), "");
  EXPECT_EQ(r.get_str(), std::string("embedded\0null", 13));
  EXPECT_EQ(r.get_bytes(), blob);
  EXPECT_TRUE(r.at_end());
}

TEST(Buffer, UnderrunThrows) {
  ser::Writer w;
  w.put_i32(1);
  ser::Reader r(w.bytes());
  r.get_i32();
  EXPECT_THROW(r.get_i64(), Error);
}

TEST(Buffer, TakeEmptiesWriter) {
  ser::Writer w;
  w.put_i32(7);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(Buffer, StringByteViews) {
  std::string s = "abc";
  auto view = ser::as_bytes(s);
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(ser::to_string(view), "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(str::trim("  a b  "), "a b");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
  EXPECT_EQ(str::trim("x"), "x");
  EXPECT_EQ(str::trim("\t\nx\r "), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(str::starts_with("foobar", "foo"));
  EXPECT_FALSE(str::starts_with("fo", "foo"));
  EXPECT_TRUE(str::ends_with("foobar", "bar"));
  EXPECT_FALSE(str::ends_with("ar", "bar"));
  EXPECT_TRUE(str::starts_with("x", ""));
}

TEST(Strings, SplitChar) {
  auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(str::split("", ',').size(), 1u);
}

TEST(Strings, SplitWs) {
  auto parts = str::split_ws("  a\tb\n c ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(str::split_ws("   ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(str::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(str::join({}, ","), "");
  EXPECT_EQ(str::join({"x"}, ","), "x");
}

TEST(Strings, Case) {
  EXPECT_EQ(str::to_lower("AbC1"), "abc1");
  EXPECT_EQ(str::to_upper("AbC1"), "ABC1");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(str::parse_int("42").value(), 42);
  EXPECT_EQ(str::parse_int(" -7 ").value(), -7);
  EXPECT_EQ(str::parse_int("0x10").value(), 16);
  EXPECT_FALSE(str::parse_int("4.2").has_value());
  EXPECT_FALSE(str::parse_int("abc").has_value());
  EXPECT_FALSE(str::parse_int("").has_value());
  EXPECT_FALSE(str::parse_int("12x").has_value());
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(str::parse_double("4.25").value(), 4.25);
  EXPECT_DOUBLE_EQ(str::parse_double("1e3").value(), 1000.0);
  EXPECT_DOUBLE_EQ(str::parse_double("-0.5").value(), -0.5);
  EXPECT_DOUBLE_EQ(str::parse_double("42").value(), 42.0);
  EXPECT_FALSE(str::parse_double("x").has_value());
  EXPECT_FALSE(str::parse_double("1.0y").has_value());
}

TEST(Strings, IsNumeric) {
  EXPECT_TRUE(str::is_numeric("3"));
  EXPECT_TRUE(str::is_numeric("3.5"));
  EXPECT_FALSE(str::is_numeric("three"));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(str::format_double(1.0), "1.0");
  EXPECT_EQ(str::format_double(0.5), "0.5");
  EXPECT_EQ(str::format_double(-3.0), "-3.0");
  EXPECT_EQ(str::format_double(0.1), "0.1");
  // Round trip preserved for awkward values.
  double v = 1.0 / 3.0;
  EXPECT_EQ(str::parse_double(str::format_double(v)).value(), v);
  EXPECT_EQ(str::format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(str::format_double(std::nan("")), "nan");
}

TEST(Strings, PrintfFormat) {
  EXPECT_EQ(str::printf_format("x=%d y=%s", {"42", "hi"}), "x=42 y=hi");
  EXPECT_EQ(str::printf_format("%5d|", {"42"}), "   42|");
  EXPECT_EQ(str::printf_format("%-5d|", {"42"}), "42   |");
  EXPECT_EQ(str::printf_format("%.2f", {"3.14159"}), "3.14");
  EXPECT_EQ(str::printf_format("%e", {"120000"}), "1.200000e+05");
  EXPECT_EQ(str::printf_format("%x", {"255"}), "ff");
  EXPECT_EQ(str::printf_format("%o", {"8"}), "10");
  EXPECT_EQ(str::printf_format("%c", {"65"}), "A");
  EXPECT_EQ(str::printf_format("100%%", {}), "100%");
  EXPECT_EQ(str::printf_format("%d", {"3.9"}), "3");  // coerces like Tcl
}

TEST(Strings, PrintfFormatErrors) {
  EXPECT_THROW(str::printf_format("%d", {}), ScriptError);
  EXPECT_THROW(str::printf_format("%d", {"abc"}), ScriptError);
  EXPECT_THROW(str::printf_format("%q", {"x"}), ScriptError);
  EXPECT_THROW(str::printf_format("%", {"x"}), ScriptError);
}

TEST(Strings, PrintfFormatLongString) {
  std::string big(2000, 'a');
  EXPECT_EQ(str::printf_format("%s", {big}), big);
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(str::replace_all("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(str::replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(str::replace_all("abc", "z", "y"), "abc");
  EXPECT_EQ(str::replace_all("abc", "", "y"), "abc");
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Ranges) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    EXPECT_LT(r.next_below(10), 10u);
    EXPECT_GE(r.next_pareto(2.0), 1.0);
  }
}

TEST(Timer, Advances) {
  Timer t;
  double a = t.elapsed();
  // Busy-wait a hair; steady_clock must advance eventually.
  while (t.elapsed() == a) {
  }
  EXPECT_GT(t.elapsed(), a);
  double w1 = wtime();
  EXPECT_GE(wtime(), w1);
}

// ---- annotated sync primitives (common/sync.h) ----

TEST(Sync, MutexGuardsSharedCounterAcrossThreads) {
  ilps::Mutex mu;
  int count = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ilps::LockGuard lock(mu);
        ++count;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(count, kThreads * kIters);
}

TEST(Sync, TryLockReportsContention) {
  ilps::Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, CondVarManualLoopHandoff) {
  ilps::Mutex mu;
  ilps::CondVar cv;
  bool ready = false;
  int seen = 0;
  std::thread consumer([&] {
    ilps::UniqueLock lock(mu);
    while (!ready) cv.wait(lock);
    seen = 1;
  });
  {
    ilps::LockGuard lock(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(seen, 1);
}

TEST(Sync, CondVarWaitUntilTimesOut) {
  ilps::Mutex mu;
  ilps::CondVar cv;
  ilps::UniqueLock lock(mu);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: the wait must come back with timeout, lock re-held.
  while (cv.wait_until(lock, deadline) != std::cv_status::timeout) {
  }
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Sync, UniqueLockExplicitWindow) {
  ilps::Mutex mu;
  ilps::UniqueLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  EXPECT_TRUE(mu.try_lock());  // really released
  mu.unlock();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Sync, RelaxedCounterTalliesConcurrently) {
  ilps::RelaxedCounter c;
  constexpr int kThreads = 4;
  constexpr int kIters = 2500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) c.add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.load(), static_cast<uint64_t>(kThreads * kIters));
  c.store(7);
  EXPECT_EQ(c.load(), 7u);
}

}  // namespace
}  // namespace ilps
