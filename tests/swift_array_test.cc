// Swift arrays: containers with write-refcount lifecycle, element
// dataflow, foreach-over-array, and size().
#include <gtest/gtest.h>

#include "runtime/runner.h"
#include "swift/ast.h"
#include "swift/compiler.h"

namespace ilps::swift {
namespace {

runtime::RunResult run(const std::string& source, int workers = 2, int engines = 1,
                       int servers = 1) {
  runtime::Config cfg;
  cfg.engines = engines;
  cfg.workers = workers;
  cfg.servers = servers;
  return runtime::run_program(cfg, compile(source));
}

TEST(SwiftArrayParse, Forms) {
  Program p = parse_swift(R"(
    int A[];
    A[0] = 1;
    int x = A[0];
    foreach v, i in A { trace(v); }
    foreach v in A { trace(v); }
  )");
  ASSERT_EQ(p.main_statements.size(), 5u);
  EXPECT_TRUE(p.main_statements[0]->is_array);
  EXPECT_EQ(p.main_statements[1]->kind, Stmt::Kind::kArrayAssign);
  EXPECT_EQ(p.main_statements[2]->value->kind, Expr::Kind::kIndex);
  EXPECT_EQ(p.main_statements[3]->kind, Stmt::Kind::kForeachArray);
  EXPECT_EQ(p.main_statements[3]->index_name, "i");
  EXPECT_TRUE(p.main_statements[4]->index_name.empty());
}

TEST(SwiftArrayCompile, Errors) {
  EXPECT_THROW(compile("int x = 1; x[0] = 2;"), SwiftError);      // not an array
  EXPECT_THROW(compile("int A[]; int y = A;"), SwiftError);        // array as scalar
  EXPECT_THROW(compile("int A[]; A = 1;"), SwiftError);            // whole-array assign
  EXPECT_THROW(compile("int A[]; A[\"k\"] = 1;"), SwiftError);     // non-int index
  EXPECT_THROW(compile("int A[]; A[0] = \"s\";"), SwiftError);     // element type
  EXPECT_THROW(compile("int x = 1; foreach v in x { }"), SwiftError);
  EXPECT_THROW(compile("int x = size(5);"), SwiftError);
}

TEST(SwiftArrayRun, StoreAndRead) {
  auto result = run(R"(
    int A[];
    A[0] = 10;
    A[1] = 20;
    int x = A[0] + A[1];
    printf("x=%d", x);
  )");
  EXPECT_TRUE(result.contains("x=30"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftArrayRun, FilledByForeachReadByForeach) {
  // The canonical Swift pattern: a loop fills the array, a second loop
  // consumes it once the write refcounts prove it complete.
  auto result = run(R"(
    (int o) f (int i) [ "set <<o>> [ expr <<i>> * <<i>> ]" ];
    int A[];
    foreach i in [0:4] {
      A[i] = f(i);
    }
    foreach v, i in A {
      printf("A[%d]=%d", i, v);
    }
  )", /*workers=*/4);
  EXPECT_EQ(result.lines.size(), 5u);
  EXPECT_TRUE(result.contains("A[0]=0"));
  EXPECT_TRUE(result.contains("A[3]=9"));
  EXPECT_TRUE(result.contains("A[4]=16"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftArrayRun, SizeBuiltin) {
  auto result = run(R"(
    int A[];
    foreach i in [0:6] { A[i] = i; }
    int n = size(A);
    printf("n=%d", n);
  )");
  EXPECT_TRUE(result.contains("n=7"));
}

TEST(SwiftArrayRun, ValueOnlyForeach) {
  auto result = run(R"(
    string S[];
    S[0] = "a";
    S[1] = "b";
    foreach v in S { printf("<%s>", v); }
  )");
  EXPECT_EQ(result.lines.size(), 2u);
  EXPECT_TRUE(result.contains("<a>"));
  EXPECT_TRUE(result.contains("<b>"));
}

TEST(SwiftArrayRun, ConditionalWrites) {
  // Writes under dataflow `if`: the write-reference transfer must keep
  // the array open until the branch decides.
  auto result = run(R"(
    (int o) ident (int i) [ "set <<o>> <<i>>" ];
    int A[];
    int cond = ident(1);
    if (cond == 1) {
      A[0] = 100;
    } else {
      A[0] = 200;
    }
    foreach v, i in A { printf("got %d", v); }
  )");
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_TRUE(result.contains("got 100"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftArrayRun, NestedLoopsWriting) {
  auto result = run(R"(
    int A[];
    foreach i in [0:1] {
      foreach j in [0:1] {
        A[i * 2 + j] = i * 10 + j;
      }
    }
    int n = size(A);
    printf("n=%d", n);
    foreach v, k in A { printf("%d:%d", k, v); }
  )", /*workers=*/3, /*engines=*/2);
  EXPECT_TRUE(result.contains("n=4"));
  EXPECT_TRUE(result.contains("3:11"));
  EXPECT_EQ(result.lines.size(), 5u);
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftArrayRun, FloatAndStringArrays) {
  auto result = run(R"(
    float F[];
    foreach i in [0:2] { F[i] = tofloat(tostring(i)) * 1.5; }
    foreach v, i in F { printf("F[%d]=%.1f", i, v); }
  )");
  EXPECT_EQ(result.lines.size(), 3u);
  EXPECT_TRUE(result.contains("F[2]=3.0"));
}

TEST(SwiftArrayRun, ArrayFeedsReduction) {
  // Consume an array inside a composite chain: sum via foreach into
  // per-element leaf prints plus size-gated output.
  auto result = run(R"(
    (int o) triple (int i) [ "set <<o>> [ expr <<i>> * 3 ]" ];
    int A[];
    foreach i in [1:4] {
      A[i] = triple(i);
    }
    foreach v, i in A {
      int check = v - i * 3;
      if (check == 0) { printf("ok %d", i); }
    }
  )", /*workers=*/4);
  EXPECT_EQ(result.lines.size(), 4u);
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftArrayRun, StringKeyedArrays) {
  auto result = run(R"(
    (int o) wc (string s) [ "set <<o>> [ llength <<s>> ]" ];
    int counts[string];
    counts["alpha beta"] = wc("alpha beta");
    counts["x"] = wc("x");
    counts["one two three"] = wc("one two three");
    foreach v, k in counts {
      printf("%s -> %d", k, v);
    }
    int direct = counts["x"];
    printf("direct=%d", direct);
  )");
  EXPECT_EQ(result.lines.size(), 4u);
  EXPECT_TRUE(result.contains("alpha beta -> 2"));
  EXPECT_TRUE(result.contains("one two three -> 3"));
  EXPECT_TRUE(result.contains("direct=1"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

TEST(SwiftArrayRun, KeyTypeChecked) {
  EXPECT_THROW(compile("int A[string]; A[1] = 2;"), SwiftError);
  EXPECT_THROW(compile("int A[]; A[\"k\"] = 2;"), SwiftError);
  EXPECT_THROW(compile("int A[float];"), SwiftError);
  EXPECT_THROW(compile("int A[string]; int x = A[5];"), SwiftError);
}

TEST(SwiftArrayRun, ExplicitIntKeySyntax) {
  auto result = run(R"(
    int A[int];
    A[3] = 33;
    foreach v, i in A { printf("%d:%d", i, v); }
  )");
  EXPECT_TRUE(result.contains("3:33"));
}

TEST(SwiftArrayRun, EmptyArrayCloses) {
  auto result = run(R"(
    int A[];
    int n = size(A);
    printf("empty=%d", n);
  )");
  EXPECT_TRUE(result.contains("empty=0"));
  EXPECT_EQ(result.unfired_rules, 0u);
}

}  // namespace
}  // namespace ilps::swift
