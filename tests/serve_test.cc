// src/serve: the resident service runtime. Covers the enter/submit/
// drain/shutdown lifecycle, concurrent request isolation, admission
// control (reject and shed-oldest), typed per-request failures that must
// not poison the resident world, and the memory bound across many
// sequential requests (namespace GC returns the store to baseline).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "serve/serve.h"

namespace ilps::serve {
namespace {

ServeConfig small_config(int engines = 1, int workers = 2, int servers = 1) {
  ServeConfig cfg;
  cfg.runtime.engines = engines;
  cfg.runtime.workers = workers;
  cfg.runtime.servers = servers;
  return cfg;
}

TEST(Serve, SingleRequestLifecycle) {
  Service service(small_config());
  service.enter();
  RequestHandle h = service.submit(R"(printf("v=%d", 41 + 1);)");
  const RequestResult& r = h.get();
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_EQ(r.lines[0], "v=42");
  EXPECT_GE(r.latency_seconds, 0.0);
  service.drain();
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.inflight, 0u);
}

TEST(Serve, SubmitBeforeEnterRunsAfter) {
  Service service(small_config());
  RequestHandle h = service.submit(R"(printf("early=%d", 7);)");
  EXPECT_FALSE(h.done());
  service.enter();
  EXPECT_EQ(h.get().lines.at(0), "early=7");
  service.shutdown();
}

TEST(Serve, ConcurrentSubmitsCompleteIndependently) {
  Service service(small_config(/*engines=*/2, /*workers=*/3));
  service.enter();
  constexpr int kRequests = 24;
  std::vector<RequestHandle> handles;
  handles.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    handles.push_back(
        service.submit("printf(\"v=%d\", " + std::to_string(i) + " + 100);"));
  }
  for (int i = 0; i < kRequests; ++i) {
    const RequestResult& r = handles[i].get();
    // Each request sees exactly its own output: per-request lines never
    // interleave even though the requests ran concurrently on two
    // engines.
    ASSERT_EQ(r.lines.size(), 1u) << "request " << i;
    EXPECT_EQ(r.lines[0], "v=" + std::to_string(i + 100));
  }
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(s.completed, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(s.failed, 0u);
}

TEST(Serve, DrainWaitsForAllInflight) {
  Service service(small_config(/*engines=*/2, /*workers=*/2));
  service.enter();
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(service.submit(R"(
      foreach i in [0:4] {
        trace(i);
      }
    )"));
  }
  service.drain();
  // drain() returning means every admitted request has completed.
  for (const RequestHandle& h : handles) EXPECT_TRUE(h.done());
  EXPECT_EQ(service.stats().inflight, 0u);
  service.shutdown();
}

TEST(Serve, RejectPolicyReturnsOverloadedDeterministically) {
  ServeConfig cfg = small_config();
  cfg.max_inflight = 2;
  cfg.admission = AdmissionPolicy::kReject;
  Service service(cfg);
  // Submitted before enter(), both requests stay queued: the overload
  // state is exact, not timing-dependent.
  RequestHandle a = service.submit(R"(printf("a=%d", 1);)");
  RequestHandle b = service.submit(R"(printf("b=%d", 2);)");
  try {
    service.submit(R"(printf("c=%d", 3);)");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeError::kOverloaded);
  }
  EXPECT_EQ(service.stats().rejected, 1u);
  service.enter();
  EXPECT_EQ(a.get().lines.at(0), "a=1");
  EXPECT_EQ(b.get().lines.at(0), "b=2");
  service.shutdown();
}

TEST(Serve, ShedOldestEvictsQueuedRequest) {
  ServeConfig cfg = small_config();
  cfg.max_inflight = 2;
  cfg.admission = AdmissionPolicy::kShedOldest;
  Service service(cfg);
  RequestHandle a = service.submit(R"(printf("a=%d", 1);)");
  RequestHandle b = service.submit(R"(printf("b=%d", 2);)");
  RequestHandle c = service.submit(R"(printf("c=%d", 3);)");  // sheds a
  const RequestResult& ra = a.wait();
  EXPECT_TRUE(ra.shed);
  EXPECT_FALSE(ra.ok());
  EXPECT_THROW(a.get(), ServeError);
  service.enter();
  EXPECT_EQ(b.get().lines.at(0), "b=2");
  EXPECT_EQ(c.get().lines.at(0), "c=3");
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.admitted, 3u);
}

TEST(Serve, SubmitAfterShutdownThrows) {
  Service service(small_config());
  service.enter();
  service.shutdown();
  try {
    service.submit(R"(printf("x=%d", 1);)");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeError::kShutdown);
  }
}

TEST(Serve, CompileErrorThrowsBeforeAdmission) {
  Service service(small_config());
  EXPECT_THROW(service.submit("int x"), Error);  // missing semicolon
  EXPECT_EQ(service.stats().admitted, 0u);
}

TEST(Serve, DeadlockFailsRequestNotRuntime) {
  Service service(small_config());
  service.enter();
  // x is assigned only on a branch the runtime never takes (statically
  // fine, dynamically stuck): the request must fail with a deadlock
  // report while the resident world keeps serving.
  RequestHandle bad = service.submit(R"(
    int c = toint("0");
    int x;
    if (c == 1) {
      x = 1;
    }
    int y = x + 1;
    printf("y=%d", y);
  )");
  const RequestResult& rb = bad.wait();
  EXPECT_FALSE(rb.ok());
  EXPECT_EQ(rb.kind, turbine::RequestErrorKind::kDeadlock);
  EXPECT_GE(rb.unfired_rules, 1u);
  EXPECT_NE(rb.error.find("\"x\""), std::string::npos) << rb.error;
  try {
    bad.get();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
  // The runtime is not poisoned: later requests run to completion.
  for (int i = 0; i < 4; ++i) {
    RequestHandle ok = service.submit("printf(\"ok=%d\", " + std::to_string(i) + ");");
    EXPECT_EQ(ok.get().lines.at(0), "ok=" + std::to_string(i));
  }
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 5u);
}

TEST(Serve, ProgramCacheCompilesOnce) {
  Service service(small_config());
  service.enter();
  const std::string source = R"(printf("same=%d", 5);)";
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(service.submit(source).get().lines.at(0), "same=5");
  }
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.programs_compiled, 1u);
  EXPECT_EQ(s.program_cache_hits, 7u);
}

TEST(Serve, MemoryBoundedAcrossManySequentialRequests) {
  Service service(small_config());
  service.enter();
  const std::string source = R"(printf("m=%d", 1 + 2);)";
  // Warm up: compile the program and store its resident copy, then take
  // the datum-count baseline the namespace GC must return the store to.
  EXPECT_EQ(service.submit(source).get().lines.at(0), "m=3");
  service.drain();
  const uint64_t baseline = service.datum_count();
  constexpr int kRequests = 10000;
  for (int i = 0; i < kRequests; ++i) {
    const RequestResult& r = service.submit(source).wait();
    ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.error;
    ASSERT_EQ(r.leftover_data, 0u) << "request " << i;
  }
  service.drain();
  // Every per-request datum was swept: resident memory is bounded by the
  // program cache, not by request count.
  EXPECT_EQ(service.datum_count(), baseline);
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.completed, static_cast<uint64_t>(kRequests) + 1);
  EXPECT_EQ(s.failed, 0u);
}

TEST(Serve, ManyConcurrentMixedPrograms) {
  ServeConfig cfg = small_config(/*engines=*/2, /*workers=*/2);
  cfg.max_inflight = 64;
  Service service(cfg);
  service.enter();
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 48; ++i) {
    switch (i % 3) {
      case 0:
        handles.push_back(
            service.submit("printf(\"p=%d\", " + std::to_string(i) + ");"));
        break;
      case 1:
        handles.push_back(service.submit(R"(
          foreach i in [0:3] {
            trace(i);
          }
        )"));
        break;
      default:
        handles.push_back(service.submit(R"(printf("s=%s", "hi");)"));
        break;
    }
  }
  int failures = 0;
  for (RequestHandle& h : handles) {
    if (!h.wait().ok()) ++failures;
  }
  EXPECT_EQ(failures, 0);
  service.shutdown();
}

// Batch mode through the same module: run_batch must preserve the legacy
// run_program semantics (runtime::run_program wraps it; the full existing
// suite exercises that path — this is a direct smoke of the entry point).
TEST(Serve, RunBatchMatchesLegacySemantics) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  runtime::RunResult r =
      Service::run_batch(cfg, "proc swift:main {} { puts \"batch ok\" }\n");
  EXPECT_TRUE(r.contains("batch ok"));
  EXPECT_EQ(r.unfired_rules, 0u);
}

}  // namespace
}  // namespace ilps::serve
