// src/serve: the resident service runtime. Covers the enter/submit/
// drain/shutdown lifecycle, concurrent request isolation, admission
// control (reject and shed-oldest), typed per-request failures that must
// not poison the resident world, and the memory bound across many
// sequential requests (namespace GC returns the store to baseline).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serve.h"
#include "tcl/interp.h"

namespace ilps::serve {
namespace {

ServeConfig small_config(int engines = 1, int workers = 2, int servers = 1) {
  ServeConfig cfg;
  cfg.runtime.engines = engines;
  cfg.runtime.workers = workers;
  cfg.runtime.servers = servers;
  return cfg;
}

// Enables tracing + metrics for one test body and restores the
// env-derived defaults, so test order never leaks state. Must be alive
// before the Service is constructed (the hub resolves its metric handles
// in its constructor).
struct ObsOn {
  bool prev_trace = obs::trace_enabled();
  bool prev_metrics = obs::metrics_enabled();
  ObsOn() {
    obs::set_trace_enabled(true);
    obs::set_metrics_enabled(true);
  }
  ~ObsOn() {
    obs::set_trace_enabled(prev_trace);
    obs::set_metrics_enabled(prev_metrics);
  }
};

size_t count_kind(const std::vector<obs::Event>& trace, obs::EventKind k) {
  return static_cast<size_t>(std::count_if(
      trace.begin(), trace.end(), [&](const obs::Event& e) { return e.kind == k; }));
}

TEST(Serve, SingleRequestLifecycle) {
  Service service(small_config());
  service.enter();
  RequestHandle h = service.submit(R"(printf("v=%d", 41 + 1);)");
  const RequestResult& r = h.get();
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.lines.size(), 1u);
  EXPECT_EQ(r.lines[0], "v=42");
  EXPECT_GE(r.latency_seconds, 0.0);
  service.drain();
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.inflight, 0u);
}

TEST(Serve, SubmitBeforeEnterRunsAfter) {
  Service service(small_config());
  RequestHandle h = service.submit(R"(printf("early=%d", 7);)");
  EXPECT_FALSE(h.done());
  service.enter();
  EXPECT_EQ(h.get().lines.at(0), "early=7");
  service.shutdown();
}

TEST(Serve, ConcurrentSubmitsCompleteIndependently) {
  Service service(small_config(/*engines=*/2, /*workers=*/3));
  service.enter();
  constexpr int kRequests = 24;
  std::vector<RequestHandle> handles;
  handles.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    handles.push_back(
        service.submit("printf(\"v=%d\", " + std::to_string(i) + " + 100);"));
  }
  for (int i = 0; i < kRequests; ++i) {
    const RequestResult& r = handles[i].get();
    // Each request sees exactly its own output: per-request lines never
    // interleave even though the requests ran concurrently on two
    // engines.
    ASSERT_EQ(r.lines.size(), 1u) << "request " << i;
    EXPECT_EQ(r.lines[0], "v=" + std::to_string(i + 100));
  }
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(s.completed, static_cast<uint64_t>(kRequests));
  EXPECT_EQ(s.failed, 0u);
}

TEST(Serve, DrainWaitsForAllInflight) {
  Service service(small_config(/*engines=*/2, /*workers=*/2));
  service.enter();
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(service.submit(R"(
      foreach i in [0:4] {
        trace(i);
      }
    )"));
  }
  service.drain();
  // drain() returning means every admitted request has completed.
  for (const RequestHandle& h : handles) EXPECT_TRUE(h.done());
  EXPECT_EQ(service.stats().inflight, 0u);
  service.shutdown();
}

TEST(Serve, RejectPolicyReturnsOverloadedDeterministically) {
  ServeConfig cfg = small_config();
  cfg.max_inflight = 2;
  cfg.admission = AdmissionPolicy::kReject;
  Service service(cfg);
  // Submitted before enter(), both requests stay queued: the overload
  // state is exact, not timing-dependent.
  RequestHandle a = service.submit(R"(printf("a=%d", 1);)");
  RequestHandle b = service.submit(R"(printf("b=%d", 2);)");
  try {
    service.submit(R"(printf("c=%d", 3);)");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeError::kOverloaded);
  }
  EXPECT_EQ(service.stats().rejected, 1u);
  service.enter();
  EXPECT_EQ(a.get().lines.at(0), "a=1");
  EXPECT_EQ(b.get().lines.at(0), "b=2");
  service.shutdown();
}

TEST(Serve, ShedOldestEvictsQueuedRequest) {
  ServeConfig cfg = small_config();
  cfg.max_inflight = 2;
  cfg.admission = AdmissionPolicy::kShedOldest;
  Service service(cfg);
  RequestHandle a = service.submit(R"(printf("a=%d", 1);)");
  RequestHandle b = service.submit(R"(printf("b=%d", 2);)");
  RequestHandle c = service.submit(R"(printf("c=%d", 3);)");  // sheds a
  const RequestResult& ra = a.wait();
  EXPECT_TRUE(ra.shed);
  EXPECT_FALSE(ra.ok());
  EXPECT_THROW(a.get(), ServeError);
  service.enter();
  EXPECT_EQ(b.get().lines.at(0), "b=2");
  EXPECT_EQ(c.get().lines.at(0), "c=3");
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.admitted, 3u);
}

TEST(Serve, SubmitAfterShutdownThrows) {
  Service service(small_config());
  service.enter();
  service.shutdown();
  try {
    service.submit(R"(printf("x=%d", 1);)");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.kind(), ServeError::kShutdown);
  }
}

TEST(Serve, CompileErrorThrowsBeforeAdmission) {
  Service service(small_config());
  EXPECT_THROW(service.submit("int x"), Error);  // missing semicolon
  EXPECT_EQ(service.stats().admitted, 0u);
}

TEST(Serve, DeadlockFailsRequestNotRuntime) {
  Service service(small_config());
  service.enter();
  // x is assigned only on a branch the runtime never takes (statically
  // fine, dynamically stuck): the request must fail with a deadlock
  // report while the resident world keeps serving.
  RequestHandle bad = service.submit(R"(
    int c = toint("0");
    int x;
    if (c == 1) {
      x = 1;
    }
    int y = x + 1;
    printf("y=%d", y);
  )");
  const RequestResult& rb = bad.wait();
  EXPECT_FALSE(rb.ok());
  EXPECT_EQ(rb.kind, turbine::RequestErrorKind::kDeadlock);
  EXPECT_GE(rb.unfired_rules, 1u);
  EXPECT_NE(rb.error.find("\"x\""), std::string::npos) << rb.error;
  try {
    bad.get();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
  // The runtime is not poisoned: later requests run to completion.
  for (int i = 0; i < 4; ++i) {
    RequestHandle ok = service.submit("printf(\"ok=%d\", " + std::to_string(i) + ");");
    EXPECT_EQ(ok.get().lines.at(0), "ok=" + std::to_string(i));
  }
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 5u);
}

TEST(Serve, ProgramCacheCompilesOnce) {
  Service service(small_config());
  service.enter();
  const std::string source = R"(printf("same=%d", 5);)";
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(service.submit(source).get().lines.at(0), "same=5");
  }
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.programs_compiled, 1u);
  EXPECT_EQ(s.program_cache_hits, 7u);
}

TEST(Serve, MemoryBoundedAcrossManySequentialRequests) {
  Service service(small_config());
  service.enter();
  const std::string source = R"(printf("m=%d", 1 + 2);)";
  // Warm up: compile the program and store its resident copy, then take
  // the datum-count baseline the namespace GC must return the store to.
  EXPECT_EQ(service.submit(source).get().lines.at(0), "m=3");
  service.drain();
  const uint64_t baseline = service.datum_count();
  constexpr int kRequests = 10000;
  for (int i = 0; i < kRequests; ++i) {
    const RequestResult& r = service.submit(source).wait();
    ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.error;
    ASSERT_EQ(r.leftover_data, 0u) << "request " << i;
  }
  service.drain();
  // Every per-request datum was swept: resident memory is bounded by the
  // program cache, not by request count.
  EXPECT_EQ(service.datum_count(), baseline);
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.completed, static_cast<uint64_t>(kRequests) + 1);
  EXPECT_EQ(s.failed, 0u);
}

TEST(Serve, UnitCacheBoundedAcrossDistinctPrograms) {
  // 10k requests, every one a distinct program (so every action text is
  // new to the per-rank compiled-unit cache). The cache must stay within
  // its LRU capacity on every rank, keep serving hits for the texts that
  // do repeat (proc bodies, the repeated warm-up program), and namespace
  // teardown must not strand units or datums.
  if (!tcl::Interp().compile_enabled()) GTEST_SKIP() << "ILPS_TCL_COMPILE=0";
  ::setenv("ILPS_TCL_UNIT_CACHE", "64", 1);
  struct RestoreEnv {
    ~RestoreEnv() { ::unsetenv("ILPS_TCL_UNIT_CACHE"); }
  } restore;
  ServeConfig cfg = small_config();
  Service service(cfg);
  service.enter();
  // Repeats first: identical action texts re-fire on the same rank, so
  // the unit cache must serve hits.
  const std::string repeated = R"(printf("r=%d", 2 + 2);)";
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(service.submit(repeated).get().lines.at(0), "r=4");
  }
  service.drain();
  const uint64_t baseline = service.datum_count();
  constexpr int kRequests = 10000;
  for (int i = 0; i < kRequests; ++i) {
    std::string source = "printf(\"d=%d\", " + std::to_string(i) + " + 1);";
    const RequestResult& r = service.submit(source).wait();
    ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.error;
    ASSERT_EQ(r.leftover_data, 0u) << "request " << i;
  }
  service.drain();
  // Namespaces swept: exactly the one resident program-cache copy per
  // distinct source remains — no per-request datum survives.
  EXPECT_EQ(service.datum_count(), baseline + kRequests);
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.failed, 0u);
  // Bounded: live units never exceed capacity on any rank (engine +
  // workers can each hold a cache).
  const uint64_t ranks = static_cast<uint64_t>(cfg.runtime.engines + cfg.runtime.workers);
  EXPECT_LE(s.tcl_units_cached, ranks * 64u);
  EXPECT_GT(s.tcl_units_cached, 0u);
  EXPECT_GT(s.tcl_compile_misses, static_cast<uint64_t>(kRequests));  // distinct programs compiled
  EXPECT_GT(s.tcl_compile_hits, 0u);  // repeated texts served from cache
}

// Regression for the ProgramCache compile-under-lock fix: racing submits
// of the same source must compile it exactly once (losers adopt the
// winner and count as hits), and distinct sources must never share a
// namespace. Compiling outside the cache lock is what lets the distinct
// submits proceed concurrently at all; the counts below are deterministic
// whichever thread wins each race.
TEST(Serve, ConcurrentSubmitsCompileEachProgramOnce) {
  ServeConfig cfg = small_config(/*engines=*/2, /*workers=*/2);
  cfg.max_inflight = 64;
  Service service(cfg);
  service.enter();
  constexpr int kThreads = 8;
  const std::string shared = R"(printf("same=%d", 7);)";
  std::vector<RequestHandle> handles(kThreads * 2);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        handles[static_cast<size_t>(t) * 2] = service.submit(shared);
        handles[static_cast<size_t>(t) * 2 + 1] =
            service.submit("printf(\"d=%d\", " + std::to_string(t) + ");");
      });
    }
    for (auto& th : threads) th.join();
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    const RequestResult r = handles[i].wait();
    EXPECT_TRUE(r.ok()) << "request " << i << ": " << r.error;
    ASSERT_EQ(r.lines.size(), 1u);
  }
  service.shutdown();
  const ServiceStats s = service.stats();
  // One compile for the shared source + one per distinct source; every
  // repeat submit of the shared source counts as a hit, including any
  // duplicate-compile race losers.
  EXPECT_EQ(s.programs_compiled, 1u + kThreads);
  EXPECT_EQ(s.program_cache_hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(Serve, ManyConcurrentMixedPrograms) {
  ServeConfig cfg = small_config(/*engines=*/2, /*workers=*/2);
  cfg.max_inflight = 64;
  Service service(cfg);
  service.enter();
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 48; ++i) {
    switch (i % 3) {
      case 0:
        handles.push_back(
            service.submit("printf(\"p=%d\", " + std::to_string(i) + ");"));
        break;
      case 1:
        handles.push_back(service.submit(R"(
          foreach i in [0:3] {
            trace(i);
          }
        )"));
        break;
      default:
        handles.push_back(service.submit(R"(printf("s=%s", "hi");)"));
        break;
    }
  }
  int failures = 0;
  for (RequestHandle& h : handles) {
    if (!h.wait().ok()) ++failures;
  }
  EXPECT_EQ(failures, 0);
  service.shutdown();
}

// ---- live telemetry plane ----

TEST(ServeTelemetry, TracedRequestCarriesStitchedCrossRankTrace) {
  ObsOn on;
  ServeConfig cfg = small_config();
  cfg.trace_sample_every = 1;  // capture every request
  Service service(cfg);
  service.enter();
  const RequestResult r = service.submit(R"(printf("t=%d", 6 * 7);)").get();
  service.shutdown();
  ASSERT_EQ(r.lines.at(0), "t=42");

  // The stitched cross-rank timeline: submit (user thread, rank -1) ->
  // owner engine begins -> rule fires / puts -> task runs -> completion.
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(count_kind(r.trace, obs::EventKind::kReqSubmit), 1u);
  EXPECT_EQ(count_kind(r.trace, obs::EventKind::kReqBegin), 1u);
  EXPECT_EQ(count_kind(r.trace, obs::EventKind::kReqDone), 1u);
  EXPECT_EQ(r.trace.front().kind, obs::EventKind::kReqSubmit);
  EXPECT_EQ(r.trace.front().rank, -1);
  EXPECT_EQ(r.trace.back().kind, obs::EventKind::kReqDone);
  for (const obs::Event& e : r.trace) EXPECT_EQ(e.req, r.id);
  for (size_t i = 1; i < r.trace.size(); ++i) EXPECT_GE(r.trace[i].t, r.trace[i - 1].t);
  // Events from more than one rank: the engine's req.begin plus wherever
  // the work ran, stitched with the off-rank submit.
  std::vector<int32_t> ranks;
  for (const obs::Event& e : r.trace) ranks.push_back(e.rank);
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  EXPECT_GE(ranks.size(), 2u);

  // The critical-path digest agrees with the timeline.
  EXPECT_EQ(r.trace_summary.events, r.trace.size());
  EXPECT_GE(r.trace_summary.rule_fires, 1u);
  EXPECT_GE(r.trace_summary.tasks, 1u);
  EXPECT_GT(r.trace_summary.exec_seconds, 0.0);
  EXPECT_GE(r.trace_summary.queue_seconds, 0.0);
  EXPECT_GT(r.trace_summary.span_seconds, 0.0);
  EXPECT_LE(r.trace_summary.queue_seconds, r.trace_summary.span_seconds);
  EXPECT_EQ(service.stats().traced_requests, 1u);
}

TEST(ServeTelemetry, TraceSamplingCapturesEveryNth) {
  ObsOn on;
  ServeConfig cfg = small_config();
  cfg.trace_sample_every = 2;  // even request ids only
  Service service(cfg);
  service.enter();
  size_t traced = 0;
  for (int i = 0; i < 4; ++i) {
    const RequestResult r = service.submit(R"(printf("n=%d", 1);)").get();
    if (!r.trace.empty()) ++traced;
    EXPECT_EQ(r.trace.empty(), r.id % 2 != 0) << "request " << r.id;
  }
  service.shutdown();
  EXPECT_EQ(traced, 2u);
  EXPECT_EQ(service.stats().traced_requests, 2u);
}

TEST(ServeTelemetry, UntracedRunsCarryNoTrace) {
  // Tracing off (the default): no capture registration, empty traces, and
  // the per-request cost is the untouched fast path.
  ServeConfig cfg = small_config();
  cfg.trace_sample_every = 1;
  Service service(cfg);
  service.enter();
  const RequestResult r = service.submit(R"(printf("q=%d", 2);)").get();
  service.shutdown();
  EXPECT_TRUE(r.trace.empty());
  EXPECT_EQ(r.trace_summary.events, 0u);
  EXPECT_EQ(service.stats().traced_requests, 0u);
}

TEST(ServeTelemetry, SlowRequestExemplarsAreKept) {
  ObsOn on;
  ServeConfig cfg = small_config();
  cfg.slow_request_seconds = 1e-9;  // everything is "slow"
  cfg.trace_sample_every = 1;
  Service service(cfg);
  service.enter();
  for (int i = 0; i < 3; ++i) service.submit(R"(printf("s=%d", 1);)").get();
  service.shutdown();
  ServiceStats s = service.stats();
  EXPECT_EQ(s.slow_requests, 3u);
  std::vector<RequestResult> ex = service.slow_exemplars();
  ASSERT_EQ(ex.size(), 3u);
  // Oldest-first, full results including the captured trace.
  EXPECT_LT(ex.front().id, ex.back().id);
  for (const RequestResult& r : ex) {
    EXPECT_GE(r.latency_seconds, 1e-9);
    EXPECT_FALSE(r.trace.empty());
  }
}

TEST(ServeTelemetry, StatusJsonReportsLiveWindowAndRanks) {
  ObsOn on;
  obs::metrics().clear();  // a clean registry isolates this test's gauges
  Service service(small_config());
  service.enter();
  for (int i = 0; i < 4; ++i) service.submit(R"(printf("w=%d", 1);)").get();
  const std::string json = service.status_json();
  service.shutdown();
  // Shape: admission counters, the rolling-window percentiles for
  // serve.request_seconds, and per-rank busy-seconds with roles.
  EXPECT_NE(json.find("\"uptime_s\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"admitted\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inflight\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ranks\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"role\":\"engine\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"role\":\"worker\""), std::string::npos) << json;
  // The window saw the 4 completions.
  const size_t wpos = json.find("\"window\":{");
  ASSERT_NE(wpos, std::string::npos);
  EXPECT_NE(json.find("\"count\":4", wpos), std::string::npos) << json;
}

TEST(ServeTelemetry, FlusherStreamsSnapshotsAndRequestTraces) {
  ObsOn on;
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ilps_serve_telemetry_test";
  fs::remove_all(dir);
  ServeConfig cfg = small_config();
  cfg.telemetry.dir = dir.string();
  cfg.telemetry.interval_ms = 10;
  cfg.trace_sample_every = 1;
  Service service(cfg);
  service.enter();
  for (int i = 0; i < 6; ++i) service.submit(R"(printf("f=%d", 1);)").get();
  // Give the background flusher at least one interval while live.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  service.shutdown();  // final flush drains everything queued

  auto read_lines = [](const fs::path& p) {
    std::ifstream in(p);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  };
  std::vector<std::string> snaps = read_lines(dir / "telemetry.jsonl");
  ASSERT_FALSE(snaps.empty());
  for (const std::string& line : snaps) {
    EXPECT_NE(line.find("\"type\":\"metrics\""), std::string::npos);
  }
  // The final snapshot embeds the service status with the rolling window.
  EXPECT_NE(snaps.back().find("\"serve.request_seconds\""), std::string::npos);
  EXPECT_NE(snaps.back().find("\"service\":{"), std::string::npos);
  EXPECT_NE(snaps.back().find("\"completed\":6"), std::string::npos) << snaps.back();

  std::vector<std::string> reqs = read_lines(dir / "requests.jsonl");
  ASSERT_EQ(reqs.size(), 6u);  // every request sampled and streamed
  for (const std::string& line : reqs) {
    EXPECT_NE(line.find("\"type\":\"request\""), std::string::npos);
    EXPECT_NE(line.find("\"events\":["), std::string::npos);
    EXPECT_NE(line.find("\"name\":\"req.submit\""), std::string::npos);
    EXPECT_NE(line.find("\"name\":\"req.done\""), std::string::npos);
  }
  fs::remove_all(dir);
}

// Batch mode through the same module: run_batch must preserve the legacy
// run_program semantics (runtime::run_program wraps it; the full existing
// suite exercises that path — this is a direct smoke of the entry point).
TEST(Serve, RunBatchMatchesLegacySemantics) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  runtime::RunResult r =
      Service::run_batch(cfg, "proc swift:main {} { puts \"batch ok\" }\n");
  EXPECT_TRUE(r.contains("batch ok"));
  EXPECT_EQ(r.unfired_rules, 0u);
}

}  // namespace
}  // namespace ilps::serve
