// The client-side datum cache: hit/miss accounting, zero-copy views,
// LRU eviction, batched multi-retrieve, typed errors, and — the part
// that earns the cache its coherence claim — piggybacked invalidations
// across id reuse under concurrency (run under TSAN in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "adlb/client.h"
#include "adlb/server.h"
#include "blob/blob.h"
#include "common/error.h"
#include "mpi/comm.h"
#include "runtime/runner.h"

namespace ilps::adlb {
namespace {

// Runs a world where every server rank serves and every client rank runs
// `client_main`. `cache_mb` is set explicitly so tests don't depend on
// the ILPS_DATA_CACHE_MB environment default.
void run(int nclients, int nservers, int cache_mb,
         const std::function<void(Client&)>& client_main,
         const std::function<void(Config&)>& tweak = {}) {
  Config cfg;
  cfg.nservers = nservers;
  cfg.data_cache_mb = cache_mb;
  if (tweak) tweak(cfg);
  mpi::World world(nclients + nservers);
  world.run([&](mpi::Comm& comm) {
    if (is_server(comm.rank(), comm.size(), cfg)) {
      Server server(comm, cfg);
      server.serve();
    } else {
      Client client(comm, cfg);
      client_main(client);
    }
  });
}

TEST(DatumCache, RepeatedRetrieveHitsAndSharesStorage) {
  run(1, 1, 64, [](Client& c) {
    int64_t id = c.unique();
    c.create(id, DataType::kString);
    c.store(id, "hello");
    ser::SharedBytes v1 = c.retrieve_view(id);
    ser::SharedBytes v2 = c.retrieve_view(id);
    EXPECT_EQ(v1.to_string(), "hello");
    EXPECT_EQ(v2.to_string(), "hello");
    // The miss populated the cache from the transport buffer; the hit
    // returns a view of the SAME storage — no copy anywhere.
    EXPECT_EQ(v1.storage.get(), v2.storage.get());
    EXPECT_TRUE(c.cache_enabled());
    EXPECT_EQ(c.cache_stats().misses, 1u);
    EXPECT_EQ(c.cache_stats().hits, 1u);
    EXPECT_GT(c.cache_bytes(), 0u);
    EXPECT_EQ(c.retrieve(id), "hello");  // string path shares the cache
    EXPECT_EQ(c.cache_stats().hits, 2u);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(DatumCache, DisabledCacheZeroActivityIdenticalResults) {
  run(1, 1, /*cache_mb=*/0, [](Client& c) {
    EXPECT_FALSE(c.cache_enabled());
    int64_t id = c.unique();
    c.create(id, DataType::kString);
    c.store(id, "payload");
    EXPECT_EQ(c.retrieve(id), "payload");
    EXPECT_EQ(c.retrieve(id), "payload");
    std::vector<int64_t> ids = {id, id};
    std::vector<std::string> vals = c.multi_retrieve(ids);
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_EQ(vals[0], "payload");
    EXPECT_EQ(vals[1], "payload");
    const DataCacheStats& s = c.cache_stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(s.invalidations, 0u);
    EXPECT_EQ(c.cache_bytes(), 0u);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(DatumCache, FtDisablesCacheButOpsStillWork) {
  run(
      1, 1, 64,
      [](Client& c) {
        EXPECT_FALSE(c.cache_enabled());  // ft wins over the budget
        int64_t id = c.unique();
        c.create(id, DataType::kString);
        c.store(id, "ft-value");
        EXPECT_EQ(c.retrieve(id), "ft-value");
        // multi_retrieve degrades to one RPC per id under ft.
        std::vector<int64_t> ids = {id, id, id};
        std::vector<std::string> vals = c.multi_retrieve(ids);
        ASSERT_EQ(vals.size(), 3u);
        for (const auto& v : vals) EXPECT_EQ(v, "ft-value");
        EXPECT_EQ(c.cache_stats().hits, 0u);
        EXPECT_EQ(c.cache_stats().misses, 0u);
        EXPECT_FALSE(c.get(kTypeWork).has_value());
      },
      [](Config& cfg) { cfg.ft = true; });
}

TEST(DatumCache, DataErrorNamesIdAndSymbol) {
  run(1, 1, 64, [](Client& c) {
    int64_t id = c.unique();
    try {
      c.retrieve(id);
      FAIL() << "expected DataError for missing datum";
    } catch (const DataError& e) {
      EXPECT_NE(std::string(e.what()).find(std::to_string(id)), std::string::npos)
          << e.what();
    }
    c.set_symbol_hint(
        [](int64_t) { return std::string("variable \"x\" (line 7)"); });
    try {
      std::vector<int64_t> ids = {id};
      c.multi_retrieve(ids);
      FAIL() << "expected DataError for missing datum in batch";
    } catch (const DataError& e) {
      std::string what = e.what();
      EXPECT_NE(what.find(std::to_string(id)), std::string::npos) << what;
      EXPECT_NE(what.find("variable \"x\" (line 7)"), std::string::npos) << what;
    }
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(DatumCache, MultiRetrieveBatchesAcrossServers) {
  run(1, 2, 64, [](Client& c) {
    // Ids spread over both shards; values must come back in input order.
    std::vector<int64_t> ids;
    for (int i = 0; i < 6; ++i) {
      int64_t id = c.unique();
      c.create(id, DataType::kString);
      c.store(id, "v" + std::to_string(i));
      ids.push_back(id);
    }
    std::vector<std::string> vals = c.multi_retrieve(ids);
    ASSERT_EQ(vals.size(), 6u);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(vals[i], "v" + std::to_string(i));
    EXPECT_EQ(c.cache_stats().misses, 6u);
    // Second pass is served entirely from the cache.
    vals = c.multi_retrieve(ids);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(vals[i], "v" + std::to_string(i));
    EXPECT_EQ(c.cache_stats().hits, 6u);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(DatumCache, EnumerateCached) {
  run(1, 1, 64, [](Client& c) {
    int64_t id = c.unique();
    c.create(id, DataType::kContainer);
    c.insert(id, "a", "1");
    c.insert(id, "b", "2");
    c.write_incr(id, -1);  // closes; containers cache only once closed
    auto first = c.enumerate(id);
    auto second = c.enumerate(id);
    ASSERT_EQ(first.size(), 2u);
    EXPECT_EQ(first, second);
    EXPECT_EQ(c.cache_stats().misses, 1u);
    EXPECT_EQ(c.cache_stats().hits, 1u);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(DatumCache, LruEvictionUnderByteBudget) {
  run(1, 1, /*cache_mb=*/1, [](Client& c) {
    const std::string big(400 << 10, 'x');  // 3 x 400 KiB > 1 MiB budget
    std::vector<int64_t> ids;
    for (int i = 0; i < 3; ++i) {
      int64_t id = c.unique();
      c.create(id, DataType::kString);
      c.store(id, big);
      EXPECT_EQ(c.retrieve(id).size(), big.size());
      ids.push_back(id);
    }
    EXPECT_GE(c.cache_stats().evictions, 1u);
    EXPECT_LE(c.cache_bytes(), size_t(1) << 20);
    // The oldest entry was evicted; re-reading it is a miss, not a hit.
    uint64_t misses = c.cache_stats().misses;
    EXPECT_EQ(c.retrieve(ids[0]).size(), big.size());
    EXPECT_EQ(c.cache_stats().misses, misses + 1);
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

TEST(DatumCache, BlobViewIsZeroCopyWithCowDetach) {
  run(1, 1, 64, [](Client& c) {
    int64_t id = c.unique();
    c.create(id, DataType::kBlob);
    c.store(id, "blob-bytes");
    blob::Blob b = blob::Blob::from_view(c.retrieve_view(id));
    EXPECT_TRUE(b.is_view());
    EXPECT_EQ(b.to_string(), "blob-bytes");
    // The view aliases the cache's storage (same backing allocation as a
    // fresh retrieve_view), so handing a blob to a leaf task copies
    // nothing.
    ser::SharedBytes again = c.retrieve_view(id);
    EXPECT_EQ(b.storage_id(), static_cast<const void*>(again.storage.get()));
    // First mutable access detaches (copy-on-write): the cached bytes
    // stay immutable.
    b.data()[0] = std::byte{'B'};
    EXPECT_FALSE(b.is_view());
    EXPECT_EQ(b.to_string(), "Blob-bytes");
    EXPECT_EQ(c.retrieve(id), "blob-bytes");
    EXPECT_FALSE(c.get(kTypeWork).has_value());
  });
}

// The stress test the cache's coherence story hangs on: one manual id is
// created, read by N concurrent readers, deleted by refcount, and
// immediately recreated with a different value — many rounds. A reader
// must never observe a previous incarnation's bytes from its cache: the
// deletion's (id, epoch) invalidation piggybacks on server replies and,
// because the writer only announces round r+1 after the delete, it
// reaches every reader before the new round's task does. Run under TSAN.
TEST(DatumCache, NoStaleReadAcrossIdReuse) {
  const int kReaders = 3;
  const int kRounds = 25;
  const int64_t id = 777;
  std::mutex mu;
  DataCacheStats total;
  std::atomic<int> mismatches{0};
  run(1 + kReaders, 1, 64, [&](Client& c) {
    if (c.rank() == 0) {
      for (int r = 0; r < kRounds; ++r) {
        const std::string value = "round-" + std::to_string(r);
        c.create(id, DataType::kString);  // writer holds the only read ref
        c.store(id, value);
        for (int reader = 1; reader <= kReaders; ++reader) {
          c.put({kTypeWork, 0, reader, kAnyRank, value});
        }
        // Wait until every reader has read (and cached) this incarnation,
        // THEN delete it out from under them: the GC queues an (id,
        // epoch) invalidation for each cache holder, piggybacked on that
        // reader's next reply — which precedes the next round's task.
        for (int done = 0; done < kReaders; ++done) {
          ASSERT_TRUE(c.get(kTypeWork).has_value());
        }
        c.ref_incr(id, -1);
        while (c.exists(id)) {
        }
      }
      EXPECT_FALSE(c.get(kTypeWork).has_value());
      return;
    }
    while (auto unit = c.get(kTypeWork)) {
      // Two reads: the first misses (the previous incarnation was
      // invalidated), the second must hit the cache — and both must be
      // THIS round's value.
      if (c.retrieve(id) != unit->payload) mismatches.fetch_add(1);
      if (c.retrieve(id) != unit->payload) mismatches.fetch_add(1);
      c.put({kTypeWork, 0, 0, kAnyRank, "done"});
    }
    std::lock_guard<std::mutex> lock(mu);
    total += c.cache_stats();
  });
  EXPECT_EQ(mismatches.load(), 0);
  // Every (reader, round) pair produced one miss and one hit, and every
  // non-final incarnation a reader cached was later invalidated.
  EXPECT_EQ(total.misses, static_cast<uint64_t>(kReaders) * kRounds);
  EXPECT_EQ(total.hits, static_cast<uint64_t>(kReaders) * kRounds);
  EXPECT_GE(total.invalidations, static_cast<uint64_t>(kReaders) * (kRounds - 1));
}

// End to end: the runner sums per-rank cache stats and a Turbine program
// that re-reads a datum produces hits (zero when the cache is off, with
// identical output).
TEST(DatumCache, RunnerAggregatesCacheStats) {
  const std::string program =
      "turbine::create 1001 string\n"
      "turbine::store_string 1001 hello\n"
      "set a [turbine::retrieve 1001]\n"
      "set b [turbine::retrieve 1001]\n"
      "puts \"$a $b\"\n";
  runtime::Config on;
  on.data_cache_mb = 64;
  runtime::RunResult r_on = runtime::run_program(on, program);
  EXPECT_TRUE(r_on.contains("hello hello"));
  EXPECT_GE(r_on.cache_stats.hits + r_on.cache_stats.misses, 1u);

  runtime::Config off;
  off.data_cache_mb = 0;
  runtime::RunResult r_off = runtime::run_program(off, program);
  EXPECT_TRUE(r_off.contains("hello hello"));
  EXPECT_EQ(r_off.cache_stats.hits, 0u);
  EXPECT_EQ(r_off.cache_stats.misses, 0u);
  EXPECT_EQ(r_off.output(), r_on.output());
}

}  // namespace
}  // namespace ilps::adlb
