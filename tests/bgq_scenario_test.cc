// The full Blue Gene/Q deployment story as one integration scenario:
// a restricted OS (no fork/exec) plus a static package image for scripts
// (no filesystem), with all computation through embedded interpreters —
// exactly the configuration the paper argues Swift/T makes possible.
// Also covers: the `answer` field of ADLB work units, and leftover-data
// diagnostics.
#include <gtest/gtest.h>

#include "adlb/client.h"
#include "adlb/server.h"
#include "mpi/comm.h"
#include "pkg/pfs.h"
#include "runtime/runner.h"
#include "swift/compiler.h"

namespace ilps {
namespace {

TEST(BgqScenario, EmbeddedOnlyWorkflowRunsWithoutOsServices) {
  // Script packages frozen into a static image at "job assembly" time.
  pkg::FileTree tree;
  tree.add("lib/physics/pkgIndex.tcl",
           pkg::make_pkg_index("physics", "1.0", "lib/physics", {"kernel.tcl"}));
  tree.add("lib/physics/kernel.tcl",
           "proc physics::energy {t} { expr 0.5 * $t * $t }\n"
           "package provide physics 1.0\n");
  auto image = std::make_shared<pkg::StaticPackage>(tree);

  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 3;
  cfg.servers = 1;
  cfg.restricted_os = true;  // fork/exec unavailable, like a BG/Q node
  cfg.setup_interp = [image](tcl::Interp& in) {
    pkg::install_script_loader(
        in, [image](const std::string& p) { return image->read(p); }, {"lib/physics"});
  };

  auto result = runtime::run_program(cfg, swift::compile(R"SW(
    (float e) energy (int t) "physics" "1.0" [
      "set <<e>> [ physics::energy <<t>> ]"
    ];
    foreach t in [1:4] {
      float e = energy(t);
      string scaled = python(strcat("v = ", tostring(t), " * 10"), "v");
      printf("t=%d e=%.1f py=%s", t, e, scaled);
    }
  )SW"));
  EXPECT_EQ(result.lines.size(), 4u);
  EXPECT_TRUE(result.contains("t=4 e=8.0 py=40"));
  EXPECT_EQ(result.unfired_rules, 0u);

  // The forbidden path fails loudly under the same configuration.
  EXPECT_THROW(runtime::run_program(cfg, swift::compile(R"SW(
    string out = sh("/bin/echo", "not allowed");
    printf("%s", out);
  )SW")),
               Error);
}

TEST(AdlbAnswer, AnswerRankTravelsWithWork) {
  // The ADLB `answer` field lets a worker send an application-level reply
  // directly to the rank that asked for the work.
  adlb::Config cfg;
  cfg.nservers = 1;
  mpi::World world(3);  // 2 clients + 1 server
  world.run([&](mpi::Comm& comm) {
    if (adlb::is_server(comm.rank(), comm.size(), cfg)) {
      adlb::Server server(comm, cfg);
      server.serve();
      return;
    }
    adlb::Client client(comm, cfg);
    constexpr int kAnswerTag = 77;
    if (comm.rank() == 0) {
      adlb::WorkUnit unit;
      unit.type = adlb::kTypeWork;
      unit.target = 1;
      unit.answer = 0;  // reply to me
      unit.payload = "21";
      client.put(unit);
      mpi::Message reply = comm.recv(1, kAnswerTag);
      EXPECT_EQ(ser::to_string(reply.data), "42");
      EXPECT_FALSE(client.get(adlb::kTypeControl).has_value());
    } else {
      auto unit = client.get(adlb::kTypeWork);
      ASSERT_TRUE(unit.has_value());
      EXPECT_EQ(unit->answer, 0);
      int doubled = std::stoi(unit->payload) * 2;
      comm.send_str(unit->answer, kAnswerTag, std::to_string(doubled));
      EXPECT_FALSE(client.get(adlb::kTypeWork).has_value());
    }
  });
}

TEST(Diagnostics, LeftoverDataReported) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 1;
  cfg.servers = 1;
  auto result = runtime::run_program(cfg, R"(
    set open1 [turbine::allocate integer]
    set open2 [turbine::allocate string]
    set closed [turbine::allocate integer]
    turbine::store_integer $closed 1
  )");
  EXPECT_EQ(result.server_stats.leftover_data, 2u);
}

TEST(MiniPyAssert, WorksInLeafTasks) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 1;
  cfg.servers = 1;
  auto ok = runtime::run_program(cfg, R"(
    puts [python {assert 1 + 1 == 2, "math is fine"} {"checked"}]
  )");
  EXPECT_TRUE(ok.contains("checked"));
  EXPECT_THROW(runtime::run_program(cfg, "python {assert False, 'leaf invariant broken'}"),
               Error);
}

}  // namespace
}  // namespace ilps
