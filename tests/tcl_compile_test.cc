// The MiniTcl bytecode layer (src/tcl/compile.*, docs/interp.md): a
// compiled unit must be observably identical to direct evaluation of its
// source — results, errors, output, commands_evaluated() deltas — while
// the compile_stats() family counts unit reuse, compiles, and raw-source
// bailouts, and the per-rank action-unit cache stays LRU-bounded.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "runtime/runner.h"
#include "tcl/compile.h"
#include "tcl/interp.h"

namespace ilps::tcl {
namespace {

struct Outcome {
  bool error = false;
  std::string result;
  uint64_t cmds = 0;
};

Outcome run(const std::string& src, bool compiled) {
  Interp in;
  in.set_compile_enabled(compiled);
  Outcome o;
  uint64_t before = in.commands_evaluated();
  try {
    if (compiled) {
      auto unit = in.compile(src);
      o.result = in.exec(*unit);
    } else {
      o.result = in.eval(src);
    }
  } catch (const TclError& e) {
    o.error = true;
    o.result = e.what();
  }
  o.cmds = in.commands_evaluated() - before;
  return o;
}

void expect_identical(const std::string& src) {
  Outcome direct = run(src, false);
  Outcome comp = run(src, true);
  EXPECT_EQ(direct.error, comp.error) << src;
  EXPECT_EQ(direct.result, comp.result) << src;
  EXPECT_EQ(direct.cmds, comp.cmds) << src;
}

TEST(Compile, SpecializedOpsMatchEval) {
  expect_identical("set a 5\nincr a 3\nexpr {$a * 2}");
  expect_identical("set s 0\nfor {set i 0} {$i < 5} {incr i} { set s [expr {$s + $i}] }\nset s");
  expect_identical("set i 0\nwhile {$i < 4} { incr i }\nset i");
  expect_identical("if {1 + 1 == 2} { set r yes } else { set r no }");
  expect_identical("set t 0\nforeach {a b} {1 2 3 4} { incr t $a; incr t $b }\nset t");
  expect_identical("catch {expr {1 / 0}} e\nset e");
  expect_identical("proc f {x} { return [expr {$x * $x}] }\nf 7");
}

TEST(Compile, ErrorsAndThrowingThunksMatchEval) {
  // A throwing argument thunk must leave the enclosing command uncounted
  // and raise the same error, in every specialized form.
  expect_identical("set a [expr {$undefined + 1}]");
  expect_identical("incr a [expr {$undefined}]");
  expect_identical("catch {set a [expr {$undefined + 1}]} e\nset e");
  expect_identical("foreach x [undefined_cmd] { set y $x }");
  expect_identical("expr {2 +}");
  expect_identical("while {\"notbool\"} { break }");
}

TEST(Compile, ExprTemplateGuardMatchesEval) {
  // Unbraced expr substitutes its words first; the compiled template must
  // agree whether the leaf values take the eager path (canonical numbers)
  // or force the raw-splice fallback (strings, inf/nan, INT64_MIN).
  expect_identical("set x 6\nset y 7\nexpr $x * $y");
  expect_identical("set v abc\nexpr {$v eq \"abc\"}");
  expect_identical("set v 2x\nexpr $v + 1");
  expect_identical("set m -9223372036854775808\nexpr $m % 3");
  expect_identical("set d 1e999\nexpr $d");
  expect_identical("set b yes\nexpr $b && 0");
}

TEST(Compile, StatsCountCompilesReuseAndBailouts) {
  Interp in;
  in.set_compile_enabled(true);
  // A proc body compiles on first call and is reused afterwards.
  in.eval("proc g {x} { expr {$x + 1} }");
  in.eval("g 1");
  uint64_t misses_after_first = in.compile_stats().misses;
  EXPECT_GT(misses_after_first, 0u);
  in.eval("g 2");
  in.eval("g 3");
  EXPECT_EQ(in.compile_stats().misses, misses_after_first);  // body reused
  EXPECT_GE(in.compile_stats().hits, 2u);

  // A parse error in the remainder becomes a raw-source tail: exec runs
  // the good prefix, then bails out to eval for the identical error.
  auto unit = in.compile("set ok 1\nset bad [oops");
  EXPECT_TRUE(unit->has_tail);
  uint64_t bailouts_before = in.compile_stats().bailouts;
  EXPECT_THROW(in.exec(*unit), TclError);
  EXPECT_EQ(in.compile_stats().bailouts, bailouts_before + 1);
  EXPECT_EQ(in.eval("set ok"), "1");  // prefix side effect applied
}

TEST(Compile, DisabledInterpKeepsStatsZero) {
  Interp in;
  in.set_compile_enabled(false);
  in.eval("proc h {x} { expr {$x * 2} }");
  EXPECT_EQ(in.eval("h 21"), "42");
  EXPECT_EQ(in.compile_stats().hits, 0u);
  EXPECT_EQ(in.compile_stats().misses, 0u);
  EXPECT_EQ(in.compile_stats().bailouts, 0u);
}

TEST(Compile, ActionUnitCacheBoundedOnEngineRanks) {
  // 300 rules with distinct action texts against a 16-entry cache: the
  // engine must keep serving (evicting LRU units) and finish with at most
  // `capacity` live units per rank — plus compile misses well above the
  // cap, proving eviction rather than unbounded growth.
  if (!Interp().compile_enabled()) GTEST_SKIP() << "ILPS_TCL_COMPILE=0";
  ::setenv("ILPS_TCL_UNIT_CACHE", "16", 1);
  struct RestoreEnv {
    ~RestoreEnv() { ::unsetenv("ILPS_TCL_UNIT_CACHE"); }
  } restore;
  std::string prog =
      "proc act {i} { expr {$i * $i} }\n"
      "for {set i 0} {$i < 300} {incr i} {\n"
      "  turbine::rule {} \"act $i\" type LOCAL\n"
      "}\n";
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 1;
  cfg.servers = 1;
  auto r = runtime::run_program(cfg, prog);
  // Two client contexts (engine + worker); only the engine caches actions.
  EXPECT_LE(r.tcl_units_cached, 2u * 16u);
  EXPECT_GT(r.tcl_units_cached, 0u);
  EXPECT_GE(r.tcl_stats.misses, 300u);  // every distinct action compiled
  EXPECT_GT(r.tcl_stats.hits, 0u);      // proc body reused across fires
}

}  // namespace
}  // namespace ilps::tcl
