#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.h"
#include "mpi/comm.h"

namespace ilps::mpi {
namespace {

TEST(World, SizeValidation) {
  EXPECT_THROW(World(0), CommError);
  EXPECT_THROW(World(-3), CommError);
  World w(1);
  EXPECT_EQ(w.size(), 1);
}

TEST(World, SingleRankRuns) {
  World w(1);
  int visits = 0;
  w.run([&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(World, AllRanksRun) {
  World w(8);
  std::atomic<int> mask{0};
  w.run([&](Comm& c) { mask.fetch_or(1 << c.rank()); });
  EXPECT_EQ(mask.load(), 0xFF);
}

TEST(PointToPoint, SendRecv) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_str(1, 5, "hello");
    } else {
      Message m = c.recv();
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 5);
      EXPECT_EQ(ser::to_string(m.data), "hello");
    }
  });
}

TEST(PointToPoint, TagMatching) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send_str(1, 1, "one");
      c.send_str(1, 2, "two");
    } else {
      // Receive out of send order by tag.
      Message m2 = c.recv(ANY_SOURCE, 2);
      EXPECT_EQ(ser::to_string(m2.data), "two");
      Message m1 = c.recv(0, 1);
      EXPECT_EQ(ser::to_string(m1.data), "one");
    }
  });
}

TEST(PointToPoint, SourceMatching) {
  World w(3);
  w.run([](Comm& c) {
    if (c.rank() != 2) {
      c.send_str(2, 7, c.rank() == 0 ? "zero" : "one");
    } else {
      Message m = c.recv(1, 7);
      EXPECT_EQ(ser::to_string(m.data), "one");
      Message m0 = c.recv(0, 7);
      EXPECT_EQ(ser::to_string(m0.data), "zero");
    }
  });
}

TEST(PointToPoint, FifoPerPair) {
  World w(2);
  w.run([](Comm& c) {
    constexpr int kCount = 200;
    if (c.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        ser::Writer msg;
        msg.put_i32(i);
        c.send(1, 3, msg);
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        Message m = c.recv(0, 3);
        EXPECT_EQ(m.reader().get_i32(), i);
      }
    }
  });
}

TEST(PointToPoint, SelfSend) {
  World w(1);
  w.run([](Comm& c) {
    c.send_str(0, 9, "me");
    Message m = c.recv(0, 9);
    EXPECT_EQ(ser::to_string(m.data), "me");
  });
}

TEST(PointToPoint, TryRecvAndIprobe) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.try_recv().has_value());
      c.send_str(1, 4, "x");
      c.barrier();
    } else {
      c.barrier();
      int src = -5;
      int tag = -5;
      EXPECT_TRUE(c.iprobe(ANY_SOURCE, ANY_TAG, &src, &tag));
      EXPECT_EQ(src, 0);
      EXPECT_EQ(tag, 4);
      auto m = c.try_recv(0, 4);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(ser::to_string(m->data), "x");
      EXPECT_FALSE(c.iprobe(ANY_SOURCE, ANY_TAG));
    }
  });
}

TEST(PointToPoint, InvalidRankThrows) {
  World w(1);
  EXPECT_THROW(w.run([](Comm& c) { c.send_str(5, 0, "x"); }), CommError);
}

TEST(PointToPoint, ReservedTagThrows) {
  World w(1);
  EXPECT_THROW(w.run([](Comm& c) { c.send_str(0, kMaxUserTag, "x"); }), CommError);
  World w2(1);
  EXPECT_THROW(w2.run([](Comm& c) { c.send_str(0, -1, "x"); }), CommError);
}

TEST(Collectives, Barrier) {
  World w(6);
  std::atomic<int> before{0};
  w.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    EXPECT_EQ(before.load(), 6);
    c.barrier();  // repeated barriers stay consistent
    c.barrier();
  });
}

TEST(Collectives, Broadcast) {
  World w(5);
  w.run([](Comm& c) {
    std::vector<std::byte> buf;
    if (c.rank() == 2) {
      ser::Writer msg;
      msg.put_str("payload");
      buf = msg.take();
    }
    c.broadcast(buf, 2);
    EXPECT_EQ(ser::Reader(buf).get_str(), "payload");
  });
}

TEST(Collectives, ReduceSum) {
  World w(7);
  w.run([](Comm& c) {
    int64_t total = c.reduce_sum(c.rank() + 1, 0);
    if (c.rank() == 0) {
      EXPECT_EQ(total, 28);  // 1+..+7
    }
  });
}

TEST(Collectives, AllreduceSumInt) {
  World w(4);
  w.run([](Comm& c) {
    EXPECT_EQ(c.allreduce_sum(static_cast<int64_t>(10 * (c.rank() + 1))), 100);
  });
}

TEST(Collectives, AllreduceSumDouble) {
  World w(4);
  w.run([](Comm& c) {
    double v = c.allreduce_sum(0.25);
    EXPECT_DOUBLE_EQ(v, 1.0);
  });
}

TEST(Collectives, Gather) {
  World w(4);
  w.run([](Comm& c) {
    ser::Writer msg;
    msg.put_i32(c.rank() * 10);
    auto parts = c.gather(msg.bytes(), 3);
    if (c.rank() == 3) {
      ASSERT_EQ(parts.size(), 4u);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(ser::Reader(parts[static_cast<size_t>(r)]).get_i32(), r * 10);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST(Collectives, RepeatedCollectivesInterleaved) {
  World w(3);
  w.run([](Comm& c) {
    for (int round = 0; round < 20; ++round) {
      int64_t sum = c.allreduce_sum(static_cast<int64_t>(round + c.rank()));
      EXPECT_EQ(sum, 3 * round + 3);
      c.barrier();
    }
  });
}

TEST(World, RankExceptionPropagatesAndUnblocksPeers) {
  World w(3);
  try {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        throw ScriptError("boom");
      }
      // Other ranks block forever; abort must wake them.
      c.recv();
    });
    FAIL() << "expected exception";
  } catch (const ScriptError& e) {
    EXPECT_STREQ(e.what(), "boom");
  } catch (const CommError&) {
    // A peer's abort exception may win the race; that is acceptable only
    // if it mentions the aborting rank.
    SUCCEED();
  }
}

// Regression for the abort-reason publication fix: abort_reason used to
// be written under a mutex but read lock-free by every rank that noticed
// the abort flag, so a reader racing the writer could observe a torn or
// partially-constructed string. With all ranks aborting at once with
// long distinct reasons, whatever error surfaces must embed exactly one
// complete reason — never an interleaving.
TEST(World, ConcurrentAbortReasonsSurfaceIntact) {
  constexpr int kRanks = 4;
  std::vector<std::string> reasons;
  reasons.reserve(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    reasons.push_back("rank" + std::to_string(r) + "-" +
                      std::string(256, static_cast<char>('a' + r)));
  }
  for (int iter = 0; iter < 8; ++iter) {
    World w(kRanks);
    try {
      w.run([&](Comm& c) { throw ScriptError(reasons[static_cast<size_t>(c.rank())]); });
      FAIL() << "expected exception";
    } catch (const ScriptError& e) {
      // The winning rank's own exception: must be one reason, verbatim.
      const std::string got = e.what();
      EXPECT_NE(std::find(reasons.begin(), reasons.end(), got), reasons.end())
          << "torn reason: " << got;
    } catch (const CommError& e) {
      // A peer surfaced the abort: the message embeds the stored reason,
      // which must be exactly one of the complete originals.
      const std::string got = e.what();
      int complete = 0;
      for (const auto& reason : reasons) {
        if (got.find(reason) != std::string::npos) ++complete;
      }
      EXPECT_EQ(complete, 1) << "torn reason in: " << got;
    }
  }
}

TEST(World, ReusableAcrossRuns) {
  World w(2);
  for (int i = 0; i < 3; ++i) {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        c.send_str(1, 0, "ping");
      } else {
        EXPECT_EQ(ser::to_string(c.recv().data), "ping");
      }
    });
  }
}

TEST(World, StatsCountTraffic) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) c.send_str(1, 0, "12345");
    if (c.rank() == 1) c.recv();
  });
  TrafficStats s = w.stats();
  EXPECT_GE(s.messages, 1u);
  EXPECT_GE(s.bytes, 5u);
}

TEST(World, Wtime) {
  World w(1);
  w.run([](Comm& c) {
    double a = c.wtime();
    double b = c.wtime();
    EXPECT_GE(b, a);
  });
}

TEST(World, ManyRanksStress) {
  World w(16);
  w.run([](Comm& c) {
    // Ring: each rank sends to the next, receives from the previous.
    int next = (c.rank() + 1) % c.size();
    int prev = (c.rank() + c.size() - 1) % c.size();
    ser::Writer msg;
    msg.put_i32(c.rank());
    c.send(next, 11, msg);
    Message m = c.recv(prev, 11);
    EXPECT_EQ(m.reader().get_i32(), prev);
    int64_t total = c.allreduce_sum(static_cast<int64_t>(1));
    EXPECT_EQ(total, 16);
  });
}

}  // namespace
}  // namespace ilps::mpi
