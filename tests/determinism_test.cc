// Property: dataflow determinism. A Swift program's set of outputs must
// not depend on the rank layout — engines, workers, servers, scheduling
// races must only change ordering, never values. This is the core
// guarantee of the single-assignment dataflow model.
#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/runner.h"
#include "swift/compiler.h"

namespace ilps::swift {
namespace {

struct Layout {
  int engines;
  int workers;
  int servers;
};

class DeterminismSweep : public ::testing::TestWithParam<Layout> {};

std::vector<std::string> sorted_output(const std::string& source, const Layout& layout) {
  runtime::Config cfg;
  cfg.engines = layout.engines;
  cfg.workers = layout.workers;
  cfg.servers = layout.servers;
  auto result = runtime::run_program(cfg, compile(source));
  EXPECT_EQ(result.unfired_rules, 0u);
  std::vector<std::string> lines = result.lines;
  std::sort(lines.begin(), lines.end());
  return lines;
}

// The reference program exercises every dataflow feature: leaf rules,
// composites, arithmetic rules, foreach splitting, dataflow if, arrays,
// and interlanguage leaves.
const char* kProgram = R"SWIFT(
  (int o) f (int i) [ "set <<o>> [ expr <<i>> * 7 ]" ];
  (int r) wrap (int a) { r = f(a) + 1; }

  int A[];
  foreach i in [0:7] {
    int v = wrap(i);
    A[i] = v;
    if (v % 2 == 0) {
      printf("even %d", v);
    } else {
      printf("odd %d", v);
    }
  }
  foreach v, i in A {
    printf("A[%d]=%d", i, v);
  }
  string py = python("z = 40 + 2", "z");
  printf("py=%s", py);
)SWIFT";

TEST_P(DeterminismSweep, SameOutputsUnderEveryLayout) {
  static const std::vector<std::string> reference =
      sorted_output(kProgram, Layout{1, 1, 1});
  ASSERT_EQ(reference.size(), 17u);  // 8 parity lines + 8 array lines + py
  auto got = sorted_output(kProgram, GetParam());
  EXPECT_EQ(got, reference);
}

INSTANTIATE_TEST_SUITE_P(Layouts, DeterminismSweep,
                         ::testing::Values(Layout{1, 1, 1}, Layout{1, 2, 1}, Layout{1, 8, 1},
                                           Layout{2, 2, 1}, Layout{2, 4, 2}, Layout{3, 6, 3},
                                           Layout{1, 2, 4}, Layout{4, 8, 2}),
                         [](const ::testing::TestParamInfo<Layout>& info) {
                           return "e" + std::to_string(info.param.engines) + "w" +
                                  std::to_string(info.param.workers) + "s" +
                                  std::to_string(info.param.servers);
                         });

// Repeated runs under the same racy layout stay deterministic.
TEST(DeterminismRepeat, TenRunsIdentical) {
  auto reference = sorted_output(kProgram, Layout{2, 4, 2});
  for (int round = 0; round < 9; ++round) {
    EXPECT_EQ(sorted_output(kProgram, Layout{2, 4, 2}), reference) << "round " << round;
  }
}

}  // namespace
}  // namespace ilps::swift
