// PFS model, static packages, and the Tcl script-loading integration.
#include <gtest/gtest.h>

#include <thread>

#include "pkg/pfs.h"
#include "tcl/interp.h"

namespace ilps::pkg {
namespace {

FileTree sample_tree() {
  FileTree tree;
  tree.add("lib/mypkg/pkgIndex.tcl",
           make_pkg_index("mypkg", "1.0", "lib/mypkg", {"a.tcl", "b.tcl"}));
  tree.add("lib/mypkg/a.tcl", "proc mypkg::fa {} { return fa_result }\n");
  tree.add("lib/mypkg/b.tcl", "proc mypkg::fb {x} { return [expr $x * 2] }\n");
  tree.add("scripts/util.tcl", "proc util_fn {} { return util_ok }\n");
  return tree;
}

TEST(FileTree, Basics) {
  FileTree tree = sample_tree();
  EXPECT_EQ(tree.file_count(), 4u);
  EXPECT_TRUE(tree.contains("scripts/util.tcl"));
  EXPECT_FALSE(tree.contains("missing.tcl"));
  ASSERT_NE(tree.get("scripts/util.tcl"), nullptr);
  EXPECT_EQ(tree.list_dir("lib/mypkg").size(), 3u);
  EXPECT_EQ(tree.list_dir("lib").size(), 3u);
  EXPECT_TRUE(tree.list_dir("nowhere").empty());
}

TEST(PfsModel, ChargesMetadataLatency) {
  PfsConfig cfg;
  cfg.open_latency_us = 100.0;
  cfg.read_us_per_byte = 0.0;
  PfsModel pfs(sample_tree(), cfg);
  EXPECT_TRUE(pfs.read("scripts/util.tcl").has_value());
  EXPECT_FALSE(pfs.read("missing.tcl").has_value());
  PfsStats s = pfs.stats();
  EXPECT_EQ(s.opens, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_DOUBLE_EQ(s.busy_us, 200.0);  // both opens cost metadata
}

TEST(PfsModel, ChargesBytes) {
  PfsConfig cfg;
  cfg.open_latency_us = 0.0;
  cfg.read_us_per_byte = 2.0;
  FileTree tree;
  tree.add("f", "12345");
  PfsModel pfs(tree, cfg);
  pfs.read("f");
  EXPECT_DOUBLE_EQ(pfs.simulated_time_us(), 10.0);
  EXPECT_EQ(pfs.stats().bytes_read, 5u);
}

TEST(PfsModel, ConcurrentReadsAreSafe) {
  PfsConfig cfg;
  PfsModel pfs(sample_tree(), cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pfs] {
      for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(pfs.read("scripts/util.tcl").has_value());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pfs.stats().opens, 400u);
}

TEST(StaticPackage, ReadsWithoutPfs) {
  StaticPackage image = StaticPackage::build(sample_tree());
  EXPECT_EQ(image.file_count(), 4u);
  auto contents = image.read("scripts/util.tcl");
  ASSERT_TRUE(contents.has_value());
  EXPECT_FALSE(image.read("missing").has_value());
  EXPECT_EQ(image.reads(), 2u);
}

TEST(ScriptLoader, SourceThroughPfs) {
  PfsModel pfs(sample_tree(), PfsConfig{});
  tcl::Interp in;
  install_script_loader(
      in, [&pfs](const std::string& p) { return pfs.read(p); }, {"lib/mypkg"});
  in.eval("source scripts/util.tcl");
  EXPECT_EQ(in.eval("util_fn"), "util_ok");
  EXPECT_GE(pfs.stats().opens, 1u);
}

TEST(ScriptLoader, PackageRequireThroughIndex) {
  PfsModel pfs(sample_tree(), PfsConfig{});
  tcl::Interp in;
  install_script_loader(
      in, [&pfs](const std::string& p) { return pfs.read(p); }, {"lib/other", "lib/mypkg"});
  EXPECT_EQ(in.eval("package require mypkg"), "1.0");
  EXPECT_EQ(in.eval("mypkg::fa"), "fa_result");
  EXPECT_EQ(in.eval("mypkg::fb 21"), "42");
  PfsStats s = pfs.stats();
  // Costs: one failed probe (lib/other), the index, and two source files.
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.opens, 4u);
}

TEST(ScriptLoader, PackageRequireThroughStaticImage) {
  StaticPackage image = StaticPackage::build(sample_tree());
  tcl::Interp in;
  install_script_loader(
      in, [&image](const std::string& p) { return image.read(p); }, {"lib/mypkg"});
  EXPECT_EQ(in.eval("package require mypkg"), "1.0");
  EXPECT_EQ(in.eval("mypkg::fb 5"), "10");
}

TEST(ScriptLoader, MissingPackageStillFails) {
  PfsModel pfs(sample_tree(), PfsConfig{});
  tcl::Interp in;
  install_script_loader(
      in, [&pfs](const std::string& p) { return pfs.read(p); }, {"lib/mypkg"});
  EXPECT_THROW(in.eval("package require ghost"), tcl::TclError);
}

TEST(MakePkgIndex, GeneratesValidTcl) {
  std::string index = make_pkg_index("p", "2.1", "d", {"x.tcl"});
  EXPECT_NE(index.find("package ifneeded p 2.1"), std::string::npos);
  EXPECT_NE(index.find("source $dir/x.tcl"), std::string::npos);
}

}  // namespace
}  // namespace ilps::pkg
