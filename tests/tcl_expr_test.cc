// The expr sublanguage: arithmetic, precedence, comparisons, logic,
// functions, laziness, and error cases.
#include <gtest/gtest.h>

#include "tcl/interp.h"

namespace ilps::tcl {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  std::string ex(std::string_view e) { return in.expr(e); }
  Interp in;
};

TEST_F(ExprTest, IntegerArithmetic) {
  EXPECT_EQ(ex("1 + 2"), "3");
  EXPECT_EQ(ex("10 - 4"), "6");
  EXPECT_EQ(ex("6 * 7"), "42");
  EXPECT_EQ(ex("7 / 2"), "3");
  EXPECT_EQ(ex("7 % 3"), "1");
}

TEST_F(ExprTest, FloorDivisionLikeTcl) {
  EXPECT_EQ(ex("-7 / 2"), "-4");
  EXPECT_EQ(ex("-7 % 2"), "1");
  EXPECT_EQ(ex("7 / -2"), "-4");
  EXPECT_EQ(ex("7 % -2"), "-1");
}

TEST_F(ExprTest, DoubleArithmetic) {
  EXPECT_EQ(ex("1.5 + 2.5"), "4.0");
  EXPECT_EQ(ex("1 / 2.0"), "0.5");
  EXPECT_EQ(ex("3.0 * 2"), "6.0");
}

TEST_F(ExprTest, Precedence) {
  EXPECT_EQ(ex("2 + 3 * 4"), "14");
  EXPECT_EQ(ex("(2 + 3) * 4"), "20");
  EXPECT_EQ(ex("2 * 3 + 4 * 5"), "26");
  EXPECT_EQ(ex("1 + 2 < 4"), "1");
  EXPECT_EQ(ex("1 << 3 + 1"), "16");
}

TEST_F(ExprTest, UnaryOperators) {
  EXPECT_EQ(ex("-5"), "-5");
  EXPECT_EQ(ex("- -5"), "5");
  EXPECT_EQ(ex("!0"), "1");
  EXPECT_EQ(ex("!3"), "0");
  EXPECT_EQ(ex("~0"), "-1");
  EXPECT_EQ(ex("+7"), "7");
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(ex("1 < 2"), "1");
  EXPECT_EQ(ex("2 <= 2"), "1");
  EXPECT_EQ(ex("3 > 4"), "0");
  EXPECT_EQ(ex("3 >= 4"), "0");
  EXPECT_EQ(ex("5 == 5"), "1");
  EXPECT_EQ(ex("5 != 5"), "0");
  EXPECT_EQ(ex("1.5 < 2"), "1");
}

TEST_F(ExprTest, NumericVsStringEquality) {
  EXPECT_EQ(ex("\"5\" == \"5.0\""), "1");   // numeric comparison
  EXPECT_EQ(ex("\"5\" eq \"5.0\""), "0");   // string comparison
  EXPECT_EQ(ex("\"abc\" == \"abc\""), "1");
  EXPECT_EQ(ex("\"abc\" eq \"abc\""), "1");
  EXPECT_EQ(ex("\"abc\" ne \"abd\""), "1");
  EXPECT_EQ(ex("\"apple\" < \"banana\""), "1");
}

TEST_F(ExprTest, InOperator) {
  EXPECT_EQ(ex("\"b\" in {a b c}"), "1");
  EXPECT_EQ(ex("\"z\" in {a b c}"), "0");
  EXPECT_EQ(ex("\"z\" ni {a b c}"), "1");
}

TEST_F(ExprTest, BitOperators) {
  EXPECT_EQ(ex("6 & 3"), "2");
  EXPECT_EQ(ex("6 | 3"), "7");
  EXPECT_EQ(ex("6 ^ 3"), "5");
  EXPECT_EQ(ex("1 << 4"), "16");
  EXPECT_EQ(ex("16 >> 2"), "4");
}

TEST_F(ExprTest, Logic) {
  EXPECT_EQ(ex("1 && 1"), "1");
  EXPECT_EQ(ex("1 && 0"), "0");
  EXPECT_EQ(ex("0 || 1"), "1");
  EXPECT_EQ(ex("0 || 0"), "0");
  EXPECT_EQ(ex("1 || 1 && 0"), "1");  // && binds tighter
}

TEST_F(ExprTest, ShortCircuitSkipsSideEffects) {
  in.eval("set hits 0");
  in.register_command("bump", [](Interp& i, std::vector<std::string>&) {
    i.eval("incr hits");
    return std::string("1");
  });
  EXPECT_EQ(ex("0 && [bump]"), "0");
  EXPECT_EQ(in.eval("set hits"), "0");
  EXPECT_EQ(ex("1 || [bump]"), "1");
  EXPECT_EQ(in.eval("set hits"), "0");
  EXPECT_EQ(ex("1 && [bump]"), "1");
  EXPECT_EQ(in.eval("set hits"), "1");
}

TEST_F(ExprTest, TernaryLazy) {
  in.eval("set hits 0");
  in.register_command("bump", [](Interp& i, std::vector<std::string>&) {
    i.eval("incr hits");
    return std::string("9");
  });
  EXPECT_EQ(ex("1 ? 5 : [bump]"), "5");
  EXPECT_EQ(in.eval("set hits"), "0");
  EXPECT_EQ(ex("0 ? [bump] : 6"), "6");
  EXPECT_EQ(in.eval("set hits"), "0");
  EXPECT_EQ(ex("0 ? 1 : [bump]"), "9");
  EXPECT_EQ(in.eval("set hits"), "1");
}

TEST_F(ExprTest, NestedTernary) {
  EXPECT_EQ(ex("1 ? 0 ? \"a\" : \"b\" : \"c\""), "b");
}

TEST_F(ExprTest, VariablesInExpr) {
  in.eval("set x 10");
  in.eval("set y 2.5");
  EXPECT_EQ(ex("$x * 2"), "20");
  EXPECT_EQ(ex("$x + $y"), "12.5");
  in.eval("set a(k) 4");
  EXPECT_EQ(ex("$a(k) + 1"), "5");
}

TEST_F(ExprTest, CommandsInExpr) {
  in.eval("proc five {} {return 5}");
  EXPECT_EQ(ex("[five] + 1"), "6");
}

TEST_F(ExprTest, MathFunctions) {
  EXPECT_EQ(ex("abs(-4)"), "4");
  EXPECT_EQ(ex("abs(-4.5)"), "4.5");
  EXPECT_EQ(ex("int(3.9)"), "3");
  EXPECT_EQ(ex("round(3.5)"), "4");
  EXPECT_EQ(ex("double(3)"), "3.0");
  EXPECT_EQ(ex("sqrt(16)"), "4.0");
  EXPECT_EQ(ex("pow(2, 10)"), "1024.0");
  EXPECT_EQ(ex("min(3, 1, 2)"), "1");
  EXPECT_EQ(ex("max(3, 1, 2)"), "3");
  EXPECT_EQ(ex("floor(2.7)"), "2.0");
  EXPECT_EQ(ex("ceil(2.2)"), "3.0");
  EXPECT_EQ(ex("exp(0)"), "1.0");
  EXPECT_EQ(ex("log(1)"), "0.0");
  EXPECT_EQ(ex("fmod(7.5, 2.0)"), "1.5");
  EXPECT_EQ(ex("hypot(3, 4)"), "5.0");
}

TEST_F(ExprTest, TrigRoundTrip) {
  EXPECT_EQ(ex("sin(0)"), "0.0");
  EXPECT_EQ(ex("cos(0)"), "1.0");
  std::string v = ex("atan2(1.0, 1.0) * 4");  // pi
  double d = std::stod(v);
  EXPECT_NEAR(d, 3.14159265358979, 1e-12);
}

TEST_F(ExprTest, RandDeterministicWithSrand) {
  ex("srand(42)");
  std::string a = ex("rand()");
  ex("srand(42)");
  std::string b = ex("rand()");
  EXPECT_EQ(a, b);
  double v = std::stod(a);
  EXPECT_GE(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST_F(ExprTest, BooleanWords) {
  EXPECT_EQ(ex("true"), "1");
  EXPECT_EQ(ex("false || true"), "1");
  EXPECT_EQ(ex("true && false"), "0");
}

TEST_F(ExprTest, HexNumbers) {
  EXPECT_EQ(ex("0x10 + 1"), "17");
  EXPECT_EQ(ex("0xff"), "255");
}

TEST_F(ExprTest, ScientificNotation) {
  EXPECT_EQ(ex("1e3"), "1000.0");
  EXPECT_EQ(ex("2.5e-1"), "0.25");
  EXPECT_EQ(ex("1e3 + 1"), "1001.0");
}

TEST_F(ExprTest, Errors) {
  EXPECT_THROW(ex("1 / 0"), TclError);
  EXPECT_THROW(ex("1 % 0"), TclError);
  EXPECT_THROW(ex("1.0 / 0.0"), TclError);
  EXPECT_THROW(ex("nonsense_word"), TclError);
  EXPECT_THROW(ex("1 +"), TclError);
  EXPECT_THROW(ex("(1"), TclError);
  EXPECT_THROW(ex("unknownfn(1)"), TclError);
  EXPECT_THROW(ex("\"a\" + 1"), TclError);
  EXPECT_THROW(ex("1.5 % 2"), TclError);
  EXPECT_THROW(ex("1 ? 2"), TclError);
  EXPECT_THROW(ex(""), TclError);
}

TEST_F(ExprTest, ThroughEvalBraced) {
  in.eval("set x 5");
  EXPECT_EQ(in.eval("expr {$x + 1}"), "6");
  EXPECT_EQ(in.eval("expr {$x > 3 ? \"big\" : \"small\"}"), "big");
}

TEST_F(ExprTest, MultiWordExpr) {
  EXPECT_EQ(in.eval("expr 1 + 2 + 3"), "6");
}

// Property-style sweep: the expr engine against reference values computed
// by the C++ compiler for a grid of operand pairs and operators.
struct ArithCase {
  int64_t a;
  int64_t b;
};

class ExprArithSweep : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ExprArithSweep, MatchesReference) {
  Interp in;
  auto [a, b] = GetParam();
  auto ex = [&](const std::string& e) { return in.expr(e); };
  std::string sa = std::to_string(a);
  std::string sb = std::to_string(b);
  EXPECT_EQ(ex(sa + " + " + sb), std::to_string(a + b));
  EXPECT_EQ(ex(sa + " - " + sb), std::to_string(a - b));
  EXPECT_EQ(ex(sa + " * " + sb), std::to_string(a * b));
  EXPECT_EQ(ex(sa + " < " + sb), a < b ? "1" : "0");
  EXPECT_EQ(ex(sa + " == " + sb), a == b ? "1" : "0");
  if (b != 0) {
    // Floor semantics.
    int64_t q = a / b;
    if (a % b != 0 && ((a < 0) != (b < 0))) --q;
    int64_t r = a - q * b;
    EXPECT_EQ(ex(sa + " / " + sb), std::to_string(q));
    EXPECT_EQ(ex(sa + " % " + sb), std::to_string(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ExprArithSweep,
                         ::testing::Values(ArithCase{0, 1}, ArithCase{1, 1}, ArithCase{-1, 1},
                                           ArithCase{7, 3}, ArithCase{-7, 3}, ArithCase{7, -3},
                                           ArithCase{-7, -3}, ArithCase{100, 7},
                                           ArithCase{-100, 7}, ArithCase{12345, -321},
                                           ArithCase{0, -5}, ArithCase{1, 0}));

}  // namespace
}  // namespace ilps::tcl
