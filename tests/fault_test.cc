// Fault-injection and recovery tests: scripted rank kills, hangs, and
// dropped messages (mpi::FaultPlan) against the ADLB retry/heartbeat
// machinery and checkpoint/restart (src/ckpt).
#include <filesystem>

#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/runner.h"

namespace fs = std::filesystem;
using namespace ilps;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("ilps-fault-test-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

// Monte Carlo pi with deterministic per-task pseudo-random points: 200
// leaf tasks each store a hit/miss bit; one engine-local rule prints the
// estimate once every future is closed. All printing happens on the
// engine, so retried leaf tasks cannot duplicate output.
const char* kPiProgram = R"(
proc pi_hit {i} {
  set a [expr {($i * 1103515245 + 12345) % 2048}]
  set b [expr {($a * 1103515245 + 12345) % 2048}]
  set x [expr {$a / 2048.0}]
  set y [expr {$b / 2048.0}]
  if {$x * $x + $y * $y <= 1.0} { return 1 }
  return 0
}
proc pi_report {ids n} {
  set hits 0
  foreach x $ids {
    set hits [expr {$hits + [turbine::retrieve_integer $x]}]
  }
  puts "pi-hits $hits of $n"
}
proc swift:main {} {
  set n 200
  set ids [list]
  for {set i 0} {$i < $n} {incr i} {
    set x [turbine::allocate integer]
    lappend ids $x
    turbine::put_work "turbine::store_integer $x \[pi_hit $i\]"
  }
  turbine::rule $ids "pi_report [list $ids] $n" type LOCAL
}
)";

// Two phases of 20 leaf tasks; phase 2 is released only after every
// phase-1 future closed. Killing the engine mid-phase-2 therefore
// guarantees checkpoints (interval 5) cover at least all of phase 1.
const char* kTwoPhaseProgram = R"(
proc task_val {i} { expr {($i * 37 + 11) % 100} }
proc report {ids} {
  set sum 0
  foreach x $ids {
    set sum [expr {$sum + [turbine::retrieve_integer $x]}]
  }
  puts "sum $sum of [llength $ids]"
}
proc phase2 {ids1} {
  set ids2 [list]
  for {set i 20} {$i < 40} {incr i} {
    set x [turbine::allocate integer]
    lappend ids2 $x
    turbine::put_work "turbine::store_integer $x \[task_val $i\]"
  }
  set all [concat $ids1 $ids2]
  turbine::rule $all "report [list $all]" type LOCAL
}
proc swift:main {} {
  set ids1 [list]
  for {set i 0} {$i < 20} {incr i} {
    set x [turbine::allocate integer]
    lappend ids1 $x
    turbine::put_work "turbine::store_integer $x \[task_val $i\]"
  }
  turbine::rule $ids1 "phase2 [list $ids1]" type LOCAL
}
)";

runtime::Config base_config() {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 3;
  cfg.servers = 1;
  return cfg;
}

}  // namespace

// ---- baseline: the driver without faults matches run_program ----

TEST(Faults, NoFaultPlanMatchesPlainRun) {
  runtime::Config cfg = base_config();
  auto plain = runtime::run_program(cfg, kPiProgram);
  auto ft = runtime::run_with_faults(cfg, kPiProgram);
  EXPECT_EQ(ft.output(), plain.output());
  EXPECT_EQ(ft.ft.attempts, 1);
  EXPECT_TRUE(ft.ft.dead_ranks.empty());
  EXPECT_EQ(ft.server_stats.requeues, 0u);
}

// ---- kill one worker mid-run: retry makes the output identical ----

TEST(Faults, KillOneWorkerMidRunCompletesIdentically) {
  runtime::Config cfg = base_config();
  auto baseline = runtime::run_program(cfg, kPiProgram);
  ASSERT_EQ(baseline.lines.size(), 1u);

  // Worker ranks are 1..3. Each leaf task costs the worker two sends
  // (Get request, then the store), so send #60 is the store of its task
  // #30 — mid-run of its ~67-task share.
  cfg.fault_plan.kill_rank(/*rank=*/2, /*at_message=*/60);
  cfg.max_task_retries = 2;
  auto result = runtime::run_with_faults(cfg, kPiProgram);

  EXPECT_EQ(result.output(), baseline.output());
  EXPECT_EQ(result.ft.attempts, 1);  // recovered in place, no restart
  ASSERT_EQ(result.ft.dead_ranks.size(), 1u);
  EXPECT_EQ(result.ft.dead_ranks[0], 2);
  EXPECT_GE(result.server_stats.requeues, 1u);
}

// ---- engine death: restart from checkpoint replays only unfinished ----

TEST(Faults, EngineRestartFromCheckpointSkipsFinishedTasks) {
  TempDir dir("engine-restart");
  runtime::Config cfg = base_config();
  auto baseline = runtime::run_program(cfg, kTwoPhaseProgram);
  ASSERT_EQ(baseline.lines.size(), 1u);

  // By engine send #75 every phase-1 task has finished (phase 2 only
  // exists after their closes), so checkpoints at interval 5 hold at
  // least 10 completed tasks when the engine dies.
  cfg.fault_plan.kill_rank(/*rank=*/0, /*at_message=*/75);
  cfg.ckpt_interval = 5;
  cfg.ckpt_dir = dir.str();
  auto result = runtime::run_with_faults(cfg, kTwoPhaseProgram);

  EXPECT_EQ(result.output(), baseline.output());
  EXPECT_EQ(result.ft.attempts, 2);  // one restart
  ASSERT_EQ(result.ft.dead_ranks.size(), 1u);
  EXPECT_EQ(result.ft.dead_ranks[0], 0);
  // Only unfinished tasks were replayed: the skips and the attempt-2
  // worker tasks partition the 40 leaf tasks exactly.
  EXPECT_GE(result.server_stats.replay_skips, 5u);
  EXPECT_LT(result.server_stats.replay_skips, 40u);
  EXPECT_EQ(result.worker_stats.tasks, 40u - result.server_stats.replay_skips);
}

// ---- restart attempts must not pollute the metrics registry ----

TEST(Faults, RestartDoesNotAccumulateMetricHistograms) {
  TempDir dir("restart-metrics");
  runtime::Config cfg = base_config();
  cfg.fault_plan.kill_rank(/*rank=*/0, /*at_message=*/75);
  cfg.ckpt_interval = 5;
  cfg.ckpt_dir = dir.str();
  obs::metrics().clear();
  obs::set_metrics_enabled(true);
  auto result = runtime::run_with_faults(cfg, kTwoPhaseProgram);
  obs::set_metrics_enabled(false);
  ASSERT_EQ(result.ft.attempts, 2);
  // The aborted attempt's samples were reset between attempts: the
  // task.seconds histogram holds exactly the final attempt's worker-task
  // timings (one sample per completed leaf task), not the union of both
  // attempts. Counters are published with set() and reflect the final
  // attempt already; only histograms could accumulate.
  const obs::Histogram& h = obs::metrics().histogram("task.seconds");
  EXPECT_EQ(h.count(), result.worker_stats.tasks);
  EXPECT_EQ(obs::metrics().counter("run.attempts").value(), 2u);
}

// ---- retry exhaustion surfaces a clean, attributed error ----

TEST(Faults, RetryExhaustionThrowsTaskError) {
  runtime::Config cfg = base_config();
  cfg.max_task_retries = 1;
  try {
    runtime::run_with_faults(cfg, "turbine::put_work {no_such_command_xyz}");
    FAIL() << "expected TaskError";
  } catch (const TaskError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retries exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("task <"), std::string::npos) << what;
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
  }
}

// In plain (non-fault-tolerant) runs a leaf failure is still typed and
// names the rank and task instead of a bare interpreter string.
TEST(Faults, PlainRunWorkerErrorIsAttributed) {
  runtime::Config cfg = base_config();
  try {
    runtime::run_program(cfg, "turbine::put_work {no_such_command_xyz}");
    FAIL() << "expected TaskError";
  } catch (const TaskError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed on rank"), std::string::npos) << what;
    EXPECT_NE(what.find("task <"), std::string::npos) << what;
  }
}

// ---- hung worker: heartbeat timeout, requeue, identical output ----

TEST(Faults, HungWorkerIsDetectedByHeartbeat) {
  runtime::Config cfg = base_config();
  auto baseline = runtime::run_program(cfg, kPiProgram);

  cfg.fault_plan.hang_rank(/*rank=*/3, /*at_message=*/20);
  cfg.heartbeat_timeout_ms = 150;
  cfg.max_task_retries = 2;
  auto result = runtime::run_with_faults(cfg, kPiProgram);

  EXPECT_EQ(result.output(), baseline.output());
  EXPECT_EQ(result.ft.attempts, 1);
  EXPECT_GE(result.server_stats.heartbeat_deaths, 1u);
  ASSERT_EQ(result.ft.dead_ranks.size(), 1u);
  EXPECT_EQ(result.ft.dead_ranks[0], 3);
}

// ---- dropped request: the sender is doomed, detected by heartbeat ----

TEST(Faults, DroppedMessageSenderIsRecovered) {
  runtime::Config cfg = base_config();
  auto baseline = runtime::run_program(cfg, kPiProgram);

  cfg.fault_plan.drop_message(/*rank=*/1, /*at_message=*/30);
  cfg.heartbeat_timeout_ms = 150;
  cfg.max_task_retries = 2;
  auto result = runtime::run_with_faults(cfg, kPiProgram);

  EXPECT_EQ(result.output(), baseline.output());
  EXPECT_GE(result.server_stats.heartbeat_deaths, 1u);
}

// ---- termination token ring still converges with a dead rank ----

TEST(Faults, TokenRingTerminatesWithDeadRank) {
  runtime::Config cfg = base_config();
  cfg.workers = 4;
  cfg.servers = 2;
  auto baseline = runtime::run_program(cfg, kPiProgram);

  // Ranks: engine 0, workers 1..4, servers 5..6. Kill a worker early so
  // the Safra ring must conclude with a permanently silent client.
  cfg.fault_plan.kill_rank(/*rank=*/4, /*at_message=*/30);
  cfg.max_task_retries = 2;
  auto result = runtime::run_with_faults(cfg, kPiProgram);

  EXPECT_EQ(result.output(), baseline.output());
  ASSERT_EQ(result.ft.dead_ranks.size(), 1u);
  EXPECT_EQ(result.ft.dead_ranks[0], 4);
}

// ---- fault decisions are visible in the trace ----

namespace {

// Enables tracing for one test body; restores the env default after.
struct TraceOn {
  bool prev = obs::trace_enabled();
  TraceOn() { obs::set_trace_enabled(true); }
  ~TraceOn() { obs::set_trace_enabled(prev); }
};

int64_t count_events(const std::vector<obs::Event>& trace, obs::EventKind k) {
  return std::count_if(trace.begin(), trace.end(),
                       [&](const obs::Event& e) { return e.kind == k; });
}

}  // namespace

TEST(Faults, KilledRankEmitsRankDeadExactlyOnce) {
  TraceOn on;
  runtime::Config cfg = base_config();
  cfg.fault_plan.kill_rank(/*rank=*/2, /*at_message=*/60);
  cfg.max_task_retries = 2;
  auto result = runtime::run_with_faults(cfg, kPiProgram);

  ASSERT_FALSE(result.trace.empty());
  // The dying rank emits rank_dead from its own thread at the moment the
  // injected fault fires — once, no matter how recovery proceeds.
  std::vector<obs::Event> dead;
  for (const auto& e : result.trace) {
    if (e.kind == obs::EventKind::kRankDead) dead.push_back(e);
  }
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].rank, 2);
  EXPECT_EQ(dead[0].a, 2);
  EXPECT_EQ(dead[0].ph, obs::Phase::kInstant);
  // Termination still ran its token ring to a shutdown decision.
  EXPECT_GT(count_events(result.trace, obs::EventKind::kTermToken), 0);
  EXPECT_GE(count_events(result.trace, obs::EventKind::kShutdown), 1);
}

// A hung (not killed) worker is declared dead by the server's heartbeat
// scan, and that decision is an instant naming the silent client.
TEST(Faults, HeartbeatDeathIsTracedForHungWorker) {
  TraceOn on;
  runtime::Config cfg = base_config();
  cfg.fault_plan.hang_rank(/*rank=*/3, /*at_message=*/20);
  cfg.heartbeat_timeout_ms = 150;
  cfg.max_task_retries = 2;
  auto result = runtime::run_with_faults(cfg, kPiProgram);

  ASSERT_GE(result.server_stats.heartbeat_deaths, 1u);
  auto heartbeat = std::find_if(result.trace.begin(), result.trace.end(), [](const obs::Event& e) {
    return e.kind == obs::EventKind::kHeartbeatDeath && e.a == 3;
  });
  ASSERT_NE(heartbeat, result.trace.end());
  // The parked rank is released (and dies) only at drain, so its single
  // rank_dead instant comes after the server's heartbeat declaration.
  auto dead = std::find_if(result.trace.begin(), result.trace.end(), [](const obs::Event& e) {
    return e.kind == obs::EventKind::kRankDead;
  });
  ASSERT_NE(dead, result.trace.end());
  EXPECT_EQ(count_events(result.trace, obs::EventKind::kRankDead), 1);
  EXPECT_EQ(dead->a, 3);
  EXPECT_GE(dead->t, heartbeat->t);
}

TEST(Faults, TraceSurvivesCheckpointRestart) {
  TraceOn on;
  TempDir dir("trace-restart");
  runtime::Config cfg = base_config();
  cfg.fault_plan.kill_rank(/*rank=*/0, /*at_message=*/75);
  cfg.ckpt_interval = 5;
  cfg.ckpt_dir = dir.str();
  auto result = runtime::run_with_faults(cfg, kTwoPhaseProgram);

  EXPECT_EQ(result.ft.attempts, 2);
  // Events from the failed attempt (the engine's death) and the restart
  // (the snapshot being applied) live in one merged, time-ordered trace.
  EXPECT_EQ(count_events(result.trace, obs::EventKind::kRankDead), 1);
  EXPECT_GE(count_events(result.trace, obs::EventKind::kCkptWrite), 1);
  EXPECT_GE(count_events(result.trace, obs::EventKind::kCkptRestore), 1);
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i - 1].t, result.trace[i].t);
  }
}

// ---- deterministic scripted random faults ----

TEST(Faults, RandomKillIsDeterministic) {
  auto a = mpi::FaultPlan::random_kill(1234, 1, 3, 10, 200);
  auto b = mpi::FaultPlan::random_kill(1234, 1, 3, 10, 200);
  ASSERT_EQ(a.actions.size(), 1u);
  EXPECT_EQ(a.actions[0].rank, b.actions[0].rank);
  EXPECT_EQ(a.actions[0].at_message, b.actions[0].at_message);
  EXPECT_GE(a.actions[0].rank, 1);
  EXPECT_LE(a.actions[0].rank, 3);
  EXPECT_GE(a.actions[0].at_message, 10u);
  EXPECT_LE(a.actions[0].at_message, 200u);
}
