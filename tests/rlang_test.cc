// MiniR: the embedded R-subset interpreter.
#include <gtest/gtest.h>

#include "rlang/interp.h"

namespace ilps::r {
namespace {

class RTest : public ::testing::Test {
 protected:
  RTest() {
    in.set_output_handler([this](const std::string& s) { output += s; });
  }
  std::string ev(const std::string& code) { return in.eval(code); }
  // Swift/T R() convention.
  std::string ev2(const std::string& code, const std::string& expr) {
    return in.eval(code, expr);
  }
  Interpreter in;
  std::string output;
};

// ---- vectors and arithmetic ----

TEST_F(RTest, ScalarsArePrintedLikeR) {
  EXPECT_EQ(ev("42"), "42");
  EXPECT_EQ(ev("42.5"), "42.5");
  EXPECT_EQ(ev("-3"), "-3");
  EXPECT_EQ(ev("TRUE"), "TRUE");
  EXPECT_EQ(ev("\"hi\""), "\"hi\"");
  EXPECT_EQ(ev("NULL"), "NULL");
}

TEST_F(RTest, VectorizedArithmetic) {
  EXPECT_EQ(ev("c(1, 2, 3) + c(10, 20, 30)"), "c(11, 22, 33)");
  EXPECT_EQ(ev("c(1, 2, 3) * 2"), "c(2, 4, 6)");  // recycling
  EXPECT_EQ(ev("c(1, 2, 3, 4) + c(10, 20)"), "c(11, 22, 13, 24)");
  EXPECT_EQ(ev("2 ^ c(1, 2, 3)"), "c(2, 4, 8)");
  EXPECT_EQ(ev("7 %% 3"), "1");
  EXPECT_EQ(ev("-7 %% 3"), "2");
  EXPECT_EQ(ev("7 %/% 2"), "3");
  EXPECT_EQ(ev("1 / 2"), "0.5");
}

TEST_F(RTest, ColonSequence) {
  EXPECT_EQ(ev("1:5"), "c(1, 2, 3, 4, 5)");
  EXPECT_EQ(ev("5:1"), "c(5, 4, 3, 2, 1)");
  EXPECT_EQ(ev("sum(1:100)"), "5050");
}

TEST_F(RTest, Comparisons) {
  EXPECT_EQ(ev("c(1, 5, 3) > 2"), "c(FALSE, TRUE, TRUE)");
  EXPECT_EQ(ev("\"a\" < \"b\""), "TRUE");
  EXPECT_EQ(ev("c(1, 2) == c(1, 3)"), "c(TRUE, FALSE)");
  EXPECT_EQ(ev("1 == \"1\""), "TRUE");  // character coercion
}

TEST_F(RTest, LogicalOps) {
  EXPECT_EQ(ev("TRUE & c(TRUE, FALSE)"), "c(TRUE, FALSE)");
  EXPECT_EQ(ev("FALSE | TRUE"), "TRUE");
  EXPECT_EQ(ev("TRUE && FALSE"), "FALSE");
  EXPECT_EQ(ev("FALSE || TRUE"), "TRUE");
  EXPECT_EQ(ev("!c(TRUE, FALSE)"), "c(FALSE, TRUE)");
}

TEST_F(RTest, Assignment) {
  EXPECT_EQ(ev("x <- 5\nx + 1"), "6");
  EXPECT_EQ(ev("y = 10\ny"), "10");
  EXPECT_EQ(ev("z <- w <- 3\nz + w"), "6");
}

// ---- indexing ----

TEST_F(RTest, Indexing1Based) {
  ev("v <- c(10, 20, 30)");
  EXPECT_EQ(ev("v[1]"), "10");
  EXPECT_EQ(ev("v[3]"), "30");
  EXPECT_EQ(ev("v[c(1, 3)]"), "c(10, 30)");
  EXPECT_EQ(ev("v[2:3]"), "c(20, 30)");
  EXPECT_THROW(ev("v[4]"), RError);
}

TEST_F(RTest, NegativeIndexExcludes) {
  ev("v <- c(10, 20, 30)");
  EXPECT_EQ(ev("v[-2]"), "c(10, 30)");
  EXPECT_EQ(ev("v[-c(1, 3)]"), "20");
}

TEST_F(RTest, LogicalMask) {
  ev("v <- c(1, 2, 3, 4)");
  EXPECT_EQ(ev("v[v > 2]"), "c(3, 4)");
  EXPECT_EQ(ev("v[c(TRUE, FALSE)]"), "c(1, 3)");  // recycled mask
}

TEST_F(RTest, IndexAssignmentCopySemantics) {
  ev("x <- c(1, 2, 3)\ny <- x\ny[1] <- 99");
  EXPECT_EQ(ev("x[1]"), "1");  // R value semantics: x unchanged
  EXPECT_EQ(ev("y[1]"), "99");
}

TEST_F(RTest, IndexAssignmentExtends) {
  ev("v <- c(1)\nv[3] <- 7");
  EXPECT_EQ(ev("v"), "c(1, 0, 7)");
}

TEST_F(RTest, Lists) {
  ev("l <- list(a = 1, b = \"two\", 3)");
  EXPECT_EQ(ev("l$a"), "1");
  EXPECT_EQ(ev("l$b"), "\"two\"");
  EXPECT_EQ(ev("l[[3]]"), "3");
  EXPECT_EQ(ev("l[[\"a\"]]"), "1");
  EXPECT_EQ(ev("length(l)"), "3");
  ev("l$c <- 4");
  EXPECT_EQ(ev("l$c"), "4");
  ev("l[[1]] <- 100");
  EXPECT_EQ(ev("l$a"), "100");
  EXPECT_EQ(ev("names(l)"), "c(\"a\", \"b\", \"\", \"c\")");
}

TEST_F(RTest, NestedListIndex) {
  ev("l <- list(inner = list(x = 42))");
  EXPECT_EQ(ev("l$inner$x"), "42");
  EXPECT_EQ(ev("l[[1]][[1]]"), "42");
}

// ---- control flow ----

TEST_F(RTest, IfIsAnExpression) {
  EXPECT_EQ(ev("if (TRUE) 1 else 2"), "1");
  EXPECT_EQ(ev("if (FALSE) 1 else 2"), "2");
  EXPECT_EQ(ev("if (FALSE) 1"), "NULL");
  EXPECT_EQ(ev("x <- if (3 > 2) \"yes\" else \"no\"\nx"), "\"yes\"");
}

TEST_F(RTest, ForLoop) {
  EXPECT_EQ(ev("s <- 0\nfor (i in 1:10) s <- s + i\ns"), "55");
  EXPECT_EQ(ev("out <- \"\"\nfor (w in c(\"a\", \"b\")) out <- paste0(out, w)\nout"),
            "\"ab\"");
}

TEST_F(RTest, WhileAndBreakNext) {
  EXPECT_EQ(ev("i <- 0\nwhile (TRUE) {\n  i <- i + 1\n  if (i >= 5) break\n}\ni"), "5");
  EXPECT_EQ(ev("s <- 0\nfor (i in 1:10) {\n  if (i %% 2 == 0) next\n  s <- s + i\n}\ns"),
            "25");
}

TEST_F(RTest, RepeatLoop) {
  EXPECT_EQ(ev("n <- 0\nrepeat {\n  n <- n + 1\n  if (n == 3) break\n}\nn"), "3");
}

// ---- functions ----

TEST_F(RTest, FunctionDefinitionAndCall) {
  ev("square <- function(x) x * x");
  EXPECT_EQ(ev("square(7)"), "49");
  ev("add <- function(a, b = 10) a + b");
  EXPECT_EQ(ev("add(1, 2)"), "3");
  EXPECT_EQ(ev("add(5)"), "15");
  EXPECT_EQ(ev("add(b = 1, a = 2)"), "3");  // named argument matching
}

TEST_F(RTest, FunctionBlockAndReturn) {
  ev("f <- function(n) {\n  if (n < 0) return(\"neg\")\n  \"pos\"\n}");
  EXPECT_EQ(ev("f(-1)"), "\"neg\"");
  EXPECT_EQ(ev("f(1)"), "\"pos\"");
}

TEST_F(RTest, LexicalClosures) {
  ev("make_counter <- function() {\n  n <- 0\n  function() {\n    n <<- n + 1\n    n\n  }\n}");
  ev("counter <- make_counter()");
  EXPECT_EQ(ev("counter()"), "1");
  EXPECT_EQ(ev("counter()"), "2");
  ev("other <- make_counter()");
  EXPECT_EQ(ev("other()"), "1");   // independent environment
  EXPECT_EQ(ev("counter()"), "3");
}

TEST_F(RTest, Recursion) {
  ev("fact <- function(n) if (n <= 1) 1 else n * fact(n - 1)");
  EXPECT_EQ(ev("fact(10)"), "3628800");
}

TEST_F(RTest, RecursionLimit) {
  ev("inf <- function() inf()");
  EXPECT_THROW(ev("inf()"), RError);
}

TEST_F(RTest, LocalScope) {
  ev("x <- 1\nf <- function() {\n  x <- 2\n  x\n}");
  EXPECT_EQ(ev("f()"), "2");
  EXPECT_EQ(ev("x"), "1");
}

// ---- builtins ----

TEST_F(RTest, Statistics) {
  EXPECT_EQ(ev("mean(c(1, 2, 3, 4))"), "2.5");
  EXPECT_EQ(ev("sum(1:4)"), "10");
  EXPECT_EQ(ev("var(c(1, 2, 3, 4, 5))"), "2.5");
  EXPECT_EQ(ev("sd(c(2, 4, 4, 4, 5, 5, 7, 9))"), "2.138089935299395");
  EXPECT_EQ(ev("min(3, 1, 2)"), "1");
  EXPECT_EQ(ev("max(c(3, 1), 7)"), "7");
  EXPECT_EQ(ev("range(c(4, 1, 9))"), "c(1, 9)");
  EXPECT_EQ(ev("prod(1:5)"), "120");
  EXPECT_EQ(ev("cumsum(c(1, 2, 3))"), "c(1, 3, 6)");
}

TEST_F(RTest, SeqRepSort) {
  EXPECT_EQ(ev("seq(1, 10, by = 3)"), "c(1, 4, 7, 10)");
  EXPECT_EQ(ev("seq(0, 1, length.out = 5)"), "c(0, 0.25, 0.5, 0.75, 1)");
  EXPECT_EQ(ev("seq_len(4)"), "c(1, 2, 3, 4)");
  EXPECT_EQ(ev("rep(c(1, 2), times = 3)"), "c(1, 2, 1, 2, 1, 2)");
  EXPECT_EQ(ev("sort(c(3, 1, 2))"), "c(1, 2, 3)");
  EXPECT_EQ(ev("sort(c(3, 1, 2), decreasing = TRUE)"), "c(3, 2, 1)");
  EXPECT_EQ(ev("rev(1:3)"), "c(3, 2, 1)");
  EXPECT_EQ(ev("head(1:10, 3)"), "c(1, 2, 3)");
  EXPECT_EQ(ev("tail(1:10, 2)"), "c(9, 10)");
}

TEST_F(RTest, WhichAnyAll) {
  EXPECT_EQ(ev("which(c(FALSE, TRUE, TRUE))"), "c(2, 3)");
  EXPECT_EQ(ev("which.max(c(1, 9, 3))"), "2");
  EXPECT_EQ(ev("any(c(1, 2) > 1)"), "TRUE");
  EXPECT_EQ(ev("all(c(1, 2) > 1)"), "FALSE");
  EXPECT_EQ(ev("ifelse(c(TRUE, FALSE), 1, 2)"), "c(1, 2)");
}

TEST_F(RTest, MathVectorized) {
  EXPECT_EQ(ev("sqrt(c(4, 9))"), "c(2, 3)");
  EXPECT_EQ(ev("abs(c(-1, 2))"), "c(1, 2)");
  EXPECT_EQ(ev("floor(2.9)"), "2");
  EXPECT_EQ(ev("ceiling(2.1)"), "3");
  EXPECT_EQ(ev("round(3.14159, digits = 2)"), "3.14");
  EXPECT_EQ(ev("round(2.7)"), "3");
}

TEST_F(RTest, Strings) {
  EXPECT_EQ(ev("nchar(\"hello\")"), "5");
  EXPECT_EQ(ev("toupper(\"abc\")"), "\"ABC\"");
  EXPECT_EQ(ev("paste(\"a\", \"b\")"), "\"a b\"");
  EXPECT_EQ(ev("paste0(\"x\", 1:3)"), "c(\"x1\", \"x2\", \"x3\")");
  EXPECT_EQ(ev("paste(c(\"a\", \"b\"), collapse = \"+\")"), "\"a+b\"");
  EXPECT_EQ(ev("sprintf(\"%.2f\", 3.14159)"), "\"3.14\"");
  EXPECT_EQ(ev("sprintf(\"%d items\", 7)"), "\"7 items\"");
  EXPECT_EQ(ev("substr(\"hello\", 2, 4)"), "\"ell\"");
  EXPECT_EQ(ev("strsplit(\"a,b\", \",\")[[1]]"), "c(\"a\", \"b\")");
  EXPECT_EQ(ev("toString(c(1, 2))"), "\"1, 2\"");
}

TEST_F(RTest, Coercions) {
  EXPECT_EQ(ev("as.numeric(\"42.5\")"), "42.5");
  EXPECT_EQ(ev("as.integer(3.9)"), "3");
  EXPECT_EQ(ev("as.character(c(1, 2))"), "c(\"1\", \"2\")");
  EXPECT_EQ(ev("as.logical(\"TRUE\")"), "TRUE");
  EXPECT_EQ(ev("as.numeric(TRUE)"), "1");
  EXPECT_THROW(ev("as.numeric(\"abc\")"), RError);
}

TEST_F(RTest, TypePredicates) {
  EXPECT_EQ(ev("is.numeric(1)"), "TRUE");
  EXPECT_EQ(ev("is.character(\"a\")"), "TRUE");
  EXPECT_EQ(ev("is.null(NULL)"), "TRUE");
  EXPECT_EQ(ev("is.list(list())"), "TRUE");
  EXPECT_EQ(ev("is.function(sum)"), "TRUE");
}

TEST_F(RTest, ApplyFamily) {
  EXPECT_EQ(ev("sapply(1:4, function(x) x * x)"), "c(1, 4, 9, 16)");
  EXPECT_EQ(ev("sapply(c(\"a\", \"b\"), toupper)"), "c(\"A\", \"B\")");
  EXPECT_EQ(ev("unlist(lapply(1:3, function(x) x + 10))"), "c(11, 12, 13)");
}

TEST_F(RTest, MapReduceDoCall) {
  EXPECT_EQ(ev("unlist(Map(function(a, b) a + b, 1:3, c(10, 20, 30)))"), "c(11, 22, 33)");
  EXPECT_EQ(ev("Reduce(function(a, b) a + b, 1:5)"), "15");
  EXPECT_EQ(ev("Reduce(function(a, b) a * b, 1:4, 10)"), "240");
  EXPECT_EQ(ev("do.call(paste, list(\"a\", \"b\", sep = \"-\"))"), "\"a-b\"");
  EXPECT_EQ(ev("do.call(sum, list(1, 2, 3))"), "6");
  EXPECT_THROW(ev("do.call(sum, 5)"), RError);
}

TEST_F(RTest, InOperatorAndAppend) {
  EXPECT_EQ(ev("2 %in% c(1, 2, 3)"), "TRUE");
  EXPECT_EQ(ev("c(1, 9) %in% c(1, 2, 3)"), "c(TRUE, FALSE)");
  EXPECT_EQ(ev("\"b\" %in% c(\"a\", \"b\")"), "TRUE");
  EXPECT_EQ(ev("append(c(1, 2), c(3, 4))"), "c(1, 2, 3, 4)");
  EXPECT_EQ(ev("append(c(\"x\"), \"y\")"), "c(\"x\", \"y\")");
}

TEST_F(RTest, CatAndPrint) {
  ev("cat(\"a\", \"b\", \"\\n\")");
  EXPECT_EQ(output, "a b \n");
  output.clear();
  ev("print(c(1, 2, 3))");
  EXPECT_EQ(output, "[1] 1 2 3\n");
  output.clear();
  ev("cat(1:3, sep = \"-\")");
  EXPECT_EQ(output, "1-2-3");
}

TEST_F(RTest, RandomDeterministic) {
  ev("set.seed(11)\na <- runif(3)");
  ev("set.seed(11)\nb <- runif(3)");
  EXPECT_EQ(ev("identical(a, b)"), "TRUE");
  EXPECT_EQ(ev("all(a >= 0 & a < 1)"), "TRUE");
  EXPECT_EQ(ev("length(rnorm(5))"), "5");
  EXPECT_EQ(ev("length(runif(2, min = 5, max = 6))"), "2");
  EXPECT_EQ(ev("all(runif(10, 5, 6) >= 5)"), "TRUE");
}

TEST_F(RTest, StopThrows) {
  EXPECT_THROW(ev("stop(\"custom failure\")"), RError);
  try {
    ev("stop(\"custom failure\")");
  } catch (const RError& e) {
    EXPECT_STREQ(e.what(), "custom failure");
  }
}

TEST_F(RTest, Errors) {
  EXPECT_THROW(ev("no_such_object"), RError);
  EXPECT_THROW(ev("1 +"), RError);
  EXPECT_THROW(ev("f <- 5\nf(1)"), RError);       // non-function application
  EXPECT_THROW(ev("c(1)[\"x\"]"), RError);
  EXPECT_THROW(ev("mean(character(0))"), RError);
  EXPECT_THROW(ev("if (NULL) 1"), RError);
  EXPECT_THROW(ev("sum(1) ("), RError);
}

// ---- embedding API ----

TEST_F(RTest, SwiftTEvalConvention) {
  EXPECT_EQ(ev2("x <- 21", "x * 2"), "42");
  EXPECT_EQ(ev2("v <- c(1, 2, 3)", "v"), "1,2,3");
  EXPECT_EQ(ev2("s <- \"plain string\"", "s"), "plain string");
}

TEST_F(RTest, StatePersistsUntilReset) {
  ev("counter <- 0");
  ev("counter <- counter + 1");
  EXPECT_EQ(ev("counter"), "1");
  in.reset();
  EXPECT_THROW(ev("counter"), RError);
  EXPECT_EQ(ev("sum(1:3)"), "6");  // base library reinstalled
}

TEST_F(RTest, SetAndGetGlobals) {
  in.set_global("injected", r_numeric({1, 2, 3}));
  EXPECT_EQ(ev("sum(injected)"), "6");
  ev("result <- injected * 2");
  RRef result = in.get_global("result");
  ASSERT_TRUE(result != nullptr);
  EXPECT_EQ(deparse(result), "c(2, 4, 6)");
  EXPECT_EQ(in.get_global("missing"), nullptr);
}

// ---- a realistic statistics fragment ----

TEST_F(RTest, StatsFragment) {
  const char* code =
      "analyze <- function(samples) {\n"
      "  list(n = length(samples), mu = mean(samples), sigma = sd(samples))\n"
      "}\n"
      "set.seed(99)\n"
      "data <- rnorm(500, mean = 10, sd = 2)\n"
      "res <- analyze(data)\n";
  ev(code);
  double mu = std::stod(ev2("", "res$mu"));
  double sigma = std::stod(ev2("", "res$sigma"));
  EXPECT_NEAR(mu, 10.0, 0.5);
  EXPECT_NEAR(sigma, 2.0, 0.5);
  EXPECT_EQ(ev2("", "res$n"), "500");
}

}  // namespace
}  // namespace ilps::r
