// Stress tests for the write-behind datum pipeline under real concurrency
// (run under TSAN in CI, like datastore_cache_test).
//
// Two properties the pipeline must not weaken:
//  1. Cross-client visibility: a store a client pipelined is visible to any
//     other client whose read is causally after it (the writer ships every
//     buffered batch before the task announcing the data leaves, and the
//     transport processes causally-ordered posts in order).
//  2. Coherence ordering: cache-epoch invalidations piggybacked on windowed
//     kAckBatch replies are applied before any later reply from the same
//     server — a reader with unacked batches in flight must never serve a
//     deleted incarnation's bytes from its cache once it learns of the new
//     incarnation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "adlb/client.h"
#include "adlb/server.h"
#include "common/error.h"
#include "mpi/comm.h"

namespace ilps::adlb {
namespace {

void run(int nclients, int nservers, int cache_mb,
         const std::function<void(Client&)>& client_main) {
  Config cfg;
  cfg.nservers = nservers;
  cfg.data_cache_mb = cache_mb;
  // cfg.pipeline_window stays at its default (> 1): these tests exist to
  // exercise the pipelined path.
  mpi::World world(nclients + nservers);
  world.run([&](mpi::Comm& comm) {
    if (is_server(comm.rank(), comm.size(), cfg)) {
      Server server(comm, cfg);
      server.serve();
    } else {
      Client client(comm, cfg);
      client_main(client);
    }
  });
}

// Producer/consumer pairs over 4 shards: each producer pipelines a burst of
// create+store ops whose ids spread across every server, then announces the
// burst to its consumer with one targeted task. The consumer must see every
// value. This is the read-after-write boundary the pipeline flushes at:
// nothing the consumer does can outrun a batch the producer shipped first.
TEST(PipelineStress, FlushedStoresVisibleToOtherClients) {
  const int kPairs = 2;
  const int kRounds = 20;
  const int kBurst = 24;  // > kDataBatchOps: every round ships full frames
  const int kServers = 4;
  std::atomic<int> mismatches{0};
  std::mutex mu;
  DataPipelineStats total;
  run(2 * kPairs, kServers, /*cache_mb=*/0, [&](Client& c) {
    const int pair = c.rank() / 2;
    const bool producer = (c.rank() % 2) == 0;
    // Disjoint id ranges per (pair, round), striding 1 so consecutive ids
    // land on consecutive shards.
    auto base_id = [&](int round) {
      return int64_t(1000000) + pair * 1000000 + round * 1000;
    };
    if (producer) {
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kBurst; ++i) {
          int64_t id = base_id(r) + i;
          c.create(id, DataType::kString);
          c.store(id, "v" + std::to_string(r) + ":" + std::to_string(i));
        }
        // The put is a sync boundary: every buffered batch ships first.
        c.put({kTypeWork, 0, c.rank() + 1, kAnyRank, std::to_string(r)});
        ASSERT_TRUE(c.get(kTypeWork).has_value());  // consumer's ack task
      }
      EXPECT_FALSE(c.get(kTypeWork).has_value());
      std::lock_guard<std::mutex> lock(mu);
      total += c.pipeline_stats();
    } else {
      while (auto unit = c.get(kTypeWork)) {
        int r = std::stoi(unit->payload);
        for (int i = 0; i < kBurst; ++i) {
          int64_t id = base_id(r) + i;
          std::string want = "v" + std::to_string(r) + ":" + std::to_string(i);
          if (c.retrieve(id) != want) mismatches.fetch_add(1);
        }
        c.put({kTypeWork, 0, c.rank() - 1, kAnyRank, "ok"});
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  // The producers really pipelined: each buffered op is counted, and the
  // burst size forces multiple shipped frames per round.
  EXPECT_EQ(total.ops, uint64_t(kPairs) * kRounds * kBurst * 2);
  EXPECT_GE(total.flushes, uint64_t(kPairs) * kRounds);
  EXPECT_LT(total.flushes, total.ops);  // coalescing happened
}

// Cache-epoch invalidations must be ordered with respect to windowed acks.
// Two-phase rounds make the race deterministic:
//   phase 1: the writer (re)creates one hot id with this round's value and
//     announces it; every reader retrieves twice (miss + hit) and caches it.
//   phase 2: the writer refcount-deletes the id — queueing an (id, epoch)
//     invalidation for every cache holder at the owner server — confirms
//     the deletion, then announces "gc". Each reader now pipelines a FULL
//     kDataBatch of scratch ops to the hot id's own shard (16 sub-ops, so
//     the frame ships on its own and its kAckBatch — which carries the
//     invalidation — is in flight, unacked) and only then consults the hot
//     id again. The consult must drain the outstanding ack first and
//     observe the deletion (DataError); serving the dead incarnation's
//     bytes from the cache is the bug this test exists to catch.
TEST(PipelineStress, InvalidationsOrderedAcrossWindowedAcks) {
  const int kReaders = 3;
  const int kRounds = 20;
  const int kServers = 4;
  const int64_t id = 777;  // owner shard: 777 % 4 == 1
  std::atomic<int> stale_reads{0};
  std::mutex mu;
  DataCacheStats cache_total;
  DataPipelineStats pipe_total;
  run(1 + kReaders, kServers, /*cache_mb=*/64, [&](Client& c) {
    if (c.rank() == 0) {
      for (int r = 0; r < kRounds; ++r) {
        const std::string value = "round-" + std::to_string(r);
        c.create(id, DataType::kString);  // writer holds the only read ref
        c.store(id, value);
        for (int reader = 1; reader <= kReaders; ++reader) {
          c.put({kTypeWork, 0, reader, kAnyRank, value});
        }
        for (int done = 0; done < kReaders; ++done) {
          ASSERT_TRUE(c.get(kTypeWork).has_value());
        }
        c.ref_incr(id, -1);  // GC: queues an invalidation per cache holder
        while (c.exists(id)) {
        }
        // Deletion is processed at the owner; now tell the readers.
        for (int reader = 1; reader <= kReaders; ++reader) {
          c.put({kTypeWork, 0, reader, kAnyRank, "gc"});
        }
        for (int done = 0; done < kReaders; ++done) {
          ASSERT_TRUE(c.get(kTypeWork).has_value());
        }
      }
      EXPECT_FALSE(c.get(kTypeWork).has_value());
      return;
    }
    // Scratch ids on the hot id's shard (== 1 mod kServers), disjoint per
    // reader; 8 create+store pairs == 16 sub-ops == one full kDataBatch.
    int64_t scratch = 2000001 + int64_t(c.rank()) * 400000;
    std::string current;
    while (auto unit = c.get(kTypeWork)) {
      if (unit->payload != "gc") {
        current = unit->payload;
        if (c.retrieve(id) != current) stale_reads.fetch_add(1);  // miss
        if (c.retrieve(id) != current) stale_reads.fetch_add(1);  // hit
      } else {
        for (int i = 0; i < 8; ++i) {
          c.create(scratch, DataType::kString);
          c.store(scratch, "x");
          scratch += kServers;
        }
        // The batch shipped by itself; its unacked reply carries the hot
        // id's invalidation. A correct consult drains it and sees the
        // deletion; returning the cached (dead) bytes is staleness.
        try {
          if (c.retrieve(id) == current) stale_reads.fetch_add(1);
        } catch (const DataError&) {
          // expected: invalidation applied, then the owner reports the
          // datum gone
        }
      }
      c.put({kTypeWork, 0, 0, kAnyRank, "done"});
    }
    std::lock_guard<std::mutex> lock(mu);
    cache_total += c.cache_stats();
    pipe_total += c.pipeline_stats();
  });
  EXPECT_EQ(stale_reads.load(), 0);
  // Deterministic per (reader, round): phase 1 is miss+hit, phase 2 is one
  // applied invalidation followed by a miss that errors server-side.
  EXPECT_EQ(cache_total.misses, uint64_t(kReaders) * kRounds * 2);
  EXPECT_EQ(cache_total.hits, uint64_t(kReaders) * kRounds);
  EXPECT_EQ(cache_total.invalidations, uint64_t(kReaders) * kRounds);
  // The scratch traffic really took the pipelined path, one full frame per
  // (reader, round).
  EXPECT_EQ(pipe_total.ops, uint64_t(kReaders) * kRounds * 16);
  EXPECT_GE(pipe_total.flushes, uint64_t(kReaders) * kRounds);
}

}  // namespace
}  // namespace ilps::adlb
