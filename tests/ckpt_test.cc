// Tests for src/ckpt: snapshot round-trips, checkpoint file handling
// (versioning, pruning, atomicity), and CRC rejection of damaged files.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "ckpt/ckpt.h"
#include "ckpt/crc32.h"
#include "ckpt/snapshot.h"

namespace fs = std::filesystem;
using namespace ilps;

namespace {

// A unique fresh directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("ilps-ckpt-test-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

ckpt::Snapshot populated_snapshot() {
  ckpt::Snapshot s;
  s.seq = 7;
  s.tasks_completed = 42;

  ckpt::DatumRecord scalar;
  scalar.id = 101;
  scalar.type = 1;  // integer
  scalar.closed = true;
  scalar.has_value = true;
  scalar.value = "12345";
  scalar.read_refs = 3;
  scalar.write_refs = 1;
  s.data.push_back(scalar);

  ckpt::DatumRecord open_future;
  open_future.id = 102;
  open_future.type = 3;  // string
  open_future.closed = false;
  open_future.has_value = false;
  open_future.read_refs = 1;
  open_future.write_refs = 2;
  s.data.push_back(open_future);

  ckpt::DatumRecord container;
  container.id = 103;
  container.type = 5;  // container
  container.closed = true;
  container.has_value = false;
  container.entries = {
      {"0", "alpha"}, {"1", "beta"}, {"key with spaces", std::string("v\n\0x", 4)}};
  container.read_refs = 2;
  container.write_refs = 0;
  s.data.push_back(container);

  s.done_tasks = {0x1111u, 0x2222u, 0x2222u};  // multiset: a payload ran twice
  return s;
}

}  // namespace

// ---- crc32 ----

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
  const char* s = "123456789";
  auto span = std::span<const std::byte>(reinterpret_cast<const std::byte*>(s), 9);
  EXPECT_EQ(ckpt::crc32(span), 0xCBF43926u);
  EXPECT_EQ(ckpt::crc32({}), 0u);
}

TEST(Crc32, DetectsCorruption) {
  std::vector<std::byte> data(64, std::byte{0x5A});
  const uint32_t before = ckpt::crc32(data);
  data[10] = std::byte{0x5B};
  EXPECT_NE(ckpt::crc32(data), before);
}

// ---- snapshot serialization ----

TEST(Snapshot, RoundTripPreservesEverything) {
  ckpt::Snapshot s = populated_snapshot();
  ser::Writer w;
  s.serialize(w);
  ser::Reader r(w.bytes());
  ckpt::Snapshot back = ckpt::Snapshot::deserialize(r);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back, s);
  // Spot-check the interesting fields anyway (operator== could be wrong).
  ASSERT_EQ(back.data.size(), 3u);
  EXPECT_EQ(back.data[2].entries.size(), 3u);
  EXPECT_EQ(back.data[2].entries[1], (std::pair<std::string, std::string>{"1", "beta"}));
  EXPECT_EQ(back.data[1].write_refs, 2);
  EXPECT_EQ(back.done_tasks.size(), 3u);
}

TEST(Snapshot, EmptyRoundTrip) {
  ckpt::Snapshot s;
  ser::Writer w;
  s.serialize(w);
  ser::Reader r(w.bytes());
  EXPECT_EQ(ckpt::Snapshot::deserialize(r), s);
}

TEST(Snapshot, FingerprintIsStableAndDiscriminates) {
  EXPECT_EQ(ckpt::fingerprint("task a"), ckpt::fingerprint("task a"));
  EXPECT_NE(ckpt::fingerprint("task a"), ckpt::fingerprint("task b"));
  EXPECT_NE(ckpt::fingerprint(""), ckpt::fingerprint("x"));
}

// ---- checkpoint files ----

TEST(CkptFile, WriteThenLoadLatest) {
  TempDir dir("roundtrip");
  ckpt::Snapshot s = populated_snapshot();
  const std::string path = ckpt::write_checkpoint(dir.str(), s);
  EXPECT_TRUE(fs::exists(path));
  auto loaded = ckpt::load_latest(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, s);
}

TEST(CkptFile, LatestWinsAndOldArePruned) {
  TempDir dir("prune");
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ckpt::Snapshot s;
    s.seq = seq;
    s.tasks_completed = static_cast<int64_t>(seq * 10);
    ckpt::write_checkpoint(dir.str(), s);
  }
  auto files = ckpt::list_checkpoints(dir.str());
  EXPECT_EQ(files.size(), static_cast<size_t>(ckpt::kKeep));
  auto loaded = ckpt::load_latest(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 5u);
  EXPECT_EQ(loaded->tasks_completed, 50);
}

TEST(CkptFile, MissingDirIsEmpty) {
  EXPECT_FALSE(ckpt::load_latest("/nonexistent/ilps/nowhere").has_value());
  EXPECT_TRUE(ckpt::list_checkpoints("/nonexistent/ilps/nowhere").empty());
}

TEST(CkptFile, CorruptedPayloadIsRejected) {
  TempDir dir("crc");
  ckpt::Snapshot good;
  good.seq = 1;
  good.tasks_completed = 5;
  ckpt::write_checkpoint(dir.str(), good);
  ckpt::Snapshot newer = populated_snapshot();
  newer.seq = 2;
  const std::string newer_path = ckpt::write_checkpoint(dir.str(), newer);

  // Flip one payload byte of the newest checkpoint.
  {
    std::fstream f(newer_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    char c;
    f.seekg(-1, std::ios::end);
    f.get(c);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(c ^ 0x01));
  }
  // The damaged seq-2 file must be skipped; seq-1 is the fallback.
  auto loaded = ckpt::load_latest(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 1u);
  EXPECT_EQ(loaded->tasks_completed, 5);
}

TEST(CkptFile, TruncatedFileIsRejected) {
  TempDir dir("trunc");
  ckpt::Snapshot s = populated_snapshot();
  const std::string path = ckpt::write_checkpoint(dir.str(), s);
  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);
  EXPECT_FALSE(ckpt::load_latest(dir.str()).has_value());
}

TEST(CkptFile, GarbageFilesAreIgnored) {
  TempDir dir("garbage");
  { std::ofstream(dir.path / "ckpt-000000000003.ilps") << "not a checkpoint at all"; }
  { std::ofstream(dir.path / "README.txt") << "hello"; }
  EXPECT_FALSE(ckpt::load_latest(dir.str()).has_value());
  ckpt::Snapshot s;
  s.seq = 1;
  ckpt::write_checkpoint(dir.str(), s);
  auto loaded = ckpt::load_latest(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 1u);
}
