// Core interpreter behaviour: parsing, substitution, variables, control
// flow, procs, scoping, error handling, packages, C command registration.
#include <gtest/gtest.h>

#include "tcl/interp.h"

namespace ilps::tcl {
namespace {

class TclTest : public ::testing::Test {
 protected:
  std::string ev(std::string_view script) { return in.eval(script); }
  Interp in;
};

// ---- Basic evaluation and substitution ----

TEST_F(TclTest, SetAndGet) {
  EXPECT_EQ(ev("set x 42"), "42");
  EXPECT_EQ(ev("set x"), "42");
  EXPECT_EQ(ev("set x hello; set x"), "hello");
}

TEST_F(TclTest, DollarSubstitution) {
  ev("set x world");
  EXPECT_EQ(ev("set y hello_$x"), "hello_world");
  EXPECT_EQ(ev("set z ${x}ly"), "worldly");
}

TEST_F(TclTest, CommandSubstitution) {
  EXPECT_EQ(ev("set x [expr 1 + 2]"), "3");
  EXPECT_EQ(ev("set y a[set x]b"), "a3b");
}

TEST_F(TclTest, NestedCommandSubstitution) {
  EXPECT_EQ(ev("expr [expr 1+1] + [expr [expr 2*2] - 1]"), "5");
}

TEST_F(TclTest, QuotedWords) {
  ev("set x 5");
  EXPECT_EQ(ev("set y \"x is $x\""), "x is 5");
  EXPECT_EQ(ev("set z \"sum [expr 2+3]\""), "sum 5");
  EXPECT_EQ(ev("set t \"tab\\there\""), "tab\there");
}

TEST_F(TclTest, BracedWordsAreLiteral) {
  EXPECT_EQ(ev("set y {no $subst [here]}"), "no $subst [here]");
}

TEST_F(TclTest, SemicolonSeparatesCommands) {
  EXPECT_EQ(ev("set a 1; set b 2; expr $a + $b"), "3");
}

TEST_F(TclTest, CommentsIgnored) {
  EXPECT_EQ(ev("# a comment\nset x 1\n# more\nset x"), "1");
  EXPECT_EQ(ev("set y 2 ;# trailing comment\nset y"), "2");
}

TEST_F(TclTest, LineContinuation) {
  EXPECT_EQ(ev("set x [expr 1 + \\\n 2]"), "3");
  // Backslash-newline in a bare word separates words (Tcl semantics):
  // `set y a\<newline>b` is `set y a b` and is an arity error.
  EXPECT_THROW(ev("set y a\\\nb"), TclError);
  // Inside quotes it collapses to a single space within the word.
  EXPECT_EQ(ev("set y \"a\\\n   b\""), "a b");
}

TEST_F(TclTest, ExpansionOperator) {
  ev("set l {a b c}");
  EXPECT_EQ(ev("llength [list {*}$l d]"), "4");
  EXPECT_EQ(ev("lindex [list {*}$l d] 0"), "a");
}

TEST_F(TclTest, EmptyScriptAndBlankLines) {
  EXPECT_EQ(ev(""), "");
  EXPECT_EQ(ev("\n\n  \n"), "");
  EXPECT_EQ(ev("\n set x 9 \n\n"), "9");
}

TEST_F(TclTest, ArrayVariables) {
  ev("set a(1) one");
  ev("set a(two) 2");
  EXPECT_EQ(ev("set a(1)"), "one");
  ev("set i two");
  EXPECT_EQ(ev("set a($i)"), "2");
  EXPECT_EQ(ev("array size a"), "2");
}

TEST_F(TclTest, ArrayIndexWithSubstitution) {
  ev("set k 3");
  ev("set a(key3) v");
  EXPECT_EQ(ev("set a(key$k)"), "v");
  EXPECT_EQ(ev("set a(key[expr 1+2])"), "v");
}

TEST_F(TclTest, UnknownCommandErrors) {
  EXPECT_THROW(ev("no_such_command"), TclError);
}

TEST_F(TclTest, ReadUnsetVariableErrors) {
  EXPECT_THROW(ev("set q $undefined_var"), TclError);
}

TEST_F(TclTest, UnbalancedConstructsError) {
  EXPECT_THROW(ev("set x [expr 1"), TclError);
  EXPECT_THROW(ev("set x \"abc"), TclError);
  EXPECT_THROW(ev("set x {abc"), TclError);
}

// ---- Control flow ----

TEST_F(TclTest, IfElse) {
  EXPECT_EQ(ev("if {1 < 2} {set r yes} else {set r no}"), "yes");
  EXPECT_EQ(ev("if {1 > 2} {set r yes} else {set r no}"), "no");
  EXPECT_EQ(ev("if {0} {set r a} elseif {1} {set r b} else {set r c}"), "b");
  EXPECT_EQ(ev("if {0} {set r a}"), "");
  EXPECT_EQ(ev("if 1 then {set r t}"), "t");
}

TEST_F(TclTest, While) {
  EXPECT_EQ(ev("set i 0; while {$i < 5} {incr i}; set i"), "5");
}

TEST_F(TclTest, WhileBreakContinue) {
  EXPECT_EQ(ev("set s 0; set i 0; while 1 {incr i; if {$i > 10} break; "
               "if {$i % 2} continue; incr s $i}; set s"),
            "30");  // 2+4+6+8+10
}

TEST_F(TclTest, For) {
  EXPECT_EQ(ev("set s 0; for {set i 1} {$i <= 4} {incr i} {incr s $i}; set s"), "10");
}

TEST_F(TclTest, ForBreakSkipsNext) {
  EXPECT_EQ(ev("for {set i 0} {$i < 100} {incr i} {if {$i == 3} break}; set i"), "3");
}

TEST_F(TclTest, Foreach) {
  EXPECT_EQ(ev("set s {}; foreach x {a b c} {append s $x}; set s"), "abc");
}

TEST_F(TclTest, ForeachMultipleVars) {
  EXPECT_EQ(ev("set s {}; foreach {k v} {a 1 b 2} {append s $k=$v,}; set s"), "a=1,b=2,");
}

TEST_F(TclTest, ForeachParallelLists) {
  EXPECT_EQ(ev("set s {}; foreach x {1 2} y {a b} {append s $x$y}; set s"), "1a2b");
}

TEST_F(TclTest, ForeachShortList) {
  EXPECT_EQ(ev("set s {}; foreach {a b} {1 2 3} {append s $a-$b,}; set s"), "1-2,3-,");
}

// ---- Procs and scoping ----

TEST_F(TclTest, SimpleProc) {
  ev("proc add {a b} {return [expr $a + $b]}");
  EXPECT_EQ(ev("add 2 3"), "5");
}

TEST_F(TclTest, ProcImplicitReturn) {
  ev("proc last {} {set x 1; set y 2}");
  EXPECT_EQ(ev("last"), "2");
}

TEST_F(TclTest, ProcDefaults) {
  ev("proc greet {name {greeting hello}} {return \"$greeting $name\"}");
  EXPECT_EQ(ev("greet bob"), "hello bob");
  EXPECT_EQ(ev("greet bob hi"), "hi bob");
}

TEST_F(TclTest, ProcArgs) {
  ev("proc count {first args} {return [llength $args]}");
  EXPECT_EQ(ev("count a b c d"), "3");
  EXPECT_EQ(ev("count a"), "0");
}

TEST_F(TclTest, ProcWrongArityThrows) {
  ev("proc two {a b} {}");
  EXPECT_THROW(ev("two 1"), TclError);
  EXPECT_THROW(ev("two 1 2 3"), TclError);
}

TEST_F(TclTest, ProcLocalScope) {
  ev("set x global_value");
  ev("proc touch {} {set x local_value}");
  ev("touch");
  EXPECT_EQ(ev("set x"), "global_value");
}

TEST_F(TclTest, GlobalCommand) {
  ev("set counter 0");
  ev("proc bump {} {global counter; incr counter}");
  ev("bump; bump");
  EXPECT_EQ(ev("set counter"), "2");
}

TEST_F(TclTest, Upvar) {
  ev("proc double_it {varname} {upvar 1 $varname v; set v [expr $v * 2]}");
  ev("set n 21");
  ev("double_it n");
  EXPECT_EQ(ev("set n"), "42");
}

TEST_F(TclTest, UpvarHash0) {
  ev("set g 1");
  ev("proc deep {} {upvar #0 g x; incr x}");
  ev("proc mid {} {deep}");
  ev("mid");
  EXPECT_EQ(ev("set g"), "2");
}

TEST_F(TclTest, Uplevel) {
  ev("proc setit {} {uplevel 1 {set from_uplevel 7}}");
  ev("proc caller {} {setit; return $from_uplevel}");
  EXPECT_EQ(ev("caller"), "7");
}

TEST_F(TclTest, RecursiveProc) {
  ev("proc fib {n} {if {$n < 2} {return $n}; "
     "return [expr [fib [expr $n-1]] + [fib [expr $n-2]]]}");
  EXPECT_EQ(ev("fib 10"), "55");
}

TEST_F(TclTest, InfiniteRecursionCaught) {
  ev("proc loop {} {loop}");
  EXPECT_THROW(ev("loop"), TclError);
}

TEST_F(TclTest, RenameProc) {
  ev("proc orig {} {return o}");
  ev("rename orig renamed");
  EXPECT_EQ(ev("renamed"), "o");
  EXPECT_THROW(ev("orig"), TclError);
}

// ---- Error handling ----

TEST_F(TclTest, CatchOk) {
  EXPECT_EQ(ev("catch {set x 1} r"), "0");
  EXPECT_EQ(ev("set r"), "1");
}

TEST_F(TclTest, CatchError) {
  EXPECT_EQ(ev("catch {error boom} msg"), "1");
  EXPECT_EQ(ev("set msg"), "boom");
}

TEST_F(TclTest, CatchBreakReturnContinue) {
  EXPECT_EQ(ev("catch {break}"), "3");
  EXPECT_EQ(ev("catch {continue}"), "4");
  EXPECT_EQ(ev("catch {return xyz} v"), "2");
  EXPECT_EQ(ev("set v"), "xyz");
}

TEST_F(TclTest, ErrorPropagatesThroughProcs) {
  ev("proc inner {} {error deep_failure}");
  ev("proc outer {} {inner}");
  try {
    ev("outer");
    FAIL();
  } catch (const TclError& e) {
    EXPECT_STREQ(e.what(), "deep_failure");
  }
}

TEST_F(TclTest, ReturnCodeError) {
  EXPECT_EQ(ev("catch {return -code error oops} m"), "1");
  EXPECT_EQ(ev("set m"), "oops");
}

// ---- unset / info / exists ----

TEST_F(TclTest, UnsetVariable) {
  ev("set x 1");
  EXPECT_EQ(ev("info exists x"), "1");
  ev("unset x");
  EXPECT_EQ(ev("info exists x"), "0");
  EXPECT_THROW(ev("unset x"), TclError);
  EXPECT_EQ(ev("unset -nocomplain x"), "");
}

TEST_F(TclTest, InfoCommandsAndProcs) {
  ev("proc myproc {} {}");
  EXPECT_NE(ev("info commands").find("set"), std::string::npos);
  EXPECT_NE(ev("info procs").find("myproc"), std::string::npos);
  EXPECT_EQ(ev("info commands myproc"), "myproc");
}

TEST_F(TclTest, InfoLevel) {
  EXPECT_EQ(ev("info level"), "0");
  ev("proc lvl {} {return [info level]}");
  EXPECT_EQ(ev("lvl"), "1");
}

TEST_F(TclTest, InfoArgsBody) {
  ev("proc f {a b} {some body}");
  EXPECT_EQ(ev("info args f"), "a b");
  EXPECT_EQ(ev("info body f"), "some body");
}

// ---- eval / subst / apply ----

TEST_F(TclTest, EvalConcatenates) {
  EXPECT_EQ(ev("eval set q 11"), "11");
  EXPECT_EQ(ev("eval {set w 12}"), "12");
}

TEST_F(TclTest, SubstCommand) {
  ev("set x 3");
  EXPECT_EQ(ev("subst {x=$x sum=[expr 1+1]}"), "x=3 sum=2");
}

TEST_F(TclTest, Apply) {
  EXPECT_EQ(ev("apply {{a b} {expr $a * $b}} 6 7"), "42");
}

// ---- Host command registration (the Tcl C API analogue) ----

TEST_F(TclTest, RegisterCommand) {
  in.register_command("host_double", [](Interp&, std::vector<std::string>& args) {
    check_arity(args, 1, 1, "value");
    return std::to_string(std::stoll(args[1]) * 2);
  });
  EXPECT_EQ(ev("host_double 21"), "42");
  EXPECT_THROW(ev("host_double"), TclError);
}

TEST_F(TclTest, HostCommandSeesInterpState) {
  in.register_command("host_get", [](Interp& i, std::vector<std::string>& args) {
    return i.get_var(args[1]);
  });
  ev("set secret 99");
  EXPECT_EQ(ev("host_get secret"), "99");
}

TEST_F(TclTest, RemoveCommand) {
  in.register_command("temp", [](Interp&, std::vector<std::string>&) { return std::string("t"); });
  EXPECT_EQ(ev("temp"), "t");
  in.remove_command("temp");
  EXPECT_THROW(ev("temp"), TclError);
}

TEST_F(TclTest, QualifiedCommandNames) {
  in.register_command("turbine::rule", [](Interp&, std::vector<std::string>&) {
    return std::string("ruled");
  });
  EXPECT_EQ(ev("turbine::rule a b"), "ruled");
  ev("proc my::ns::proc1 {} {return ns_ok}");
  EXPECT_EQ(ev("my::ns::proc1"), "ns_ok");
}

// ---- Packages ----

TEST_F(TclTest, PackageProvideRequire) {
  ev("package provide mylib 1.0");
  EXPECT_EQ(ev("package require mylib"), "1.0");
  EXPECT_EQ(ev("package present mylib"), "1.0");
}

TEST_F(TclTest, PackageIfneeded) {
  ev("package ifneeded lazy 2.0 {proc lazy_fn {} {return lazied}; package provide lazy 2.0}");
  EXPECT_EQ(ev("package require lazy"), "2.0");
  EXPECT_EQ(ev("lazy_fn"), "lazied");
}

TEST_F(TclTest, PackageMissingThrows) {
  EXPECT_THROW(ev("package require ghost"), TclError);
}

TEST_F(TclTest, PackageUnknownHandler) {
  in.set_package_unknown([](Interp& i, const std::string& name) {
    if (name != "findme") return false;
    i.eval("package provide findme 3.1");
    return true;
  });
  EXPECT_EQ(ev("package require findme"), "3.1");
}

// ---- source ----

TEST_F(TclTest, SourceThroughResolver) {
  in.set_source_resolver([](const std::string& path) -> std::optional<std::string> {
    if (path == "virt.tcl") return "set sourced 1; proc from_source {} {return fs}";
    return std::nullopt;
  });
  ev("source virt.tcl");
  EXPECT_EQ(ev("set sourced"), "1");
  EXPECT_EQ(ev("from_source"), "fs");
  EXPECT_THROW(ev("source missing.tcl"), TclError);
}

// ---- puts ----

TEST_F(TclTest, PutsCaptured) {
  std::string captured;
  in.set_puts_handler([&](std::string_view text, bool newline) {
    captured.append(text);
    if (newline) captured += '\n';
  });
  ev("puts hello");
  ev("puts -nonewline world");
  ev("puts stderr !");
  EXPECT_EQ(captured, "hello\nworld!\n");
}

// ---- misc ----

TEST_F(TclTest, ClockAdvances) {
  auto a = std::stoll(ev("clock microseconds"));
  auto b = std::stoll(ev("clock microseconds"));
  EXPECT_GE(b, a);
}

TEST_F(TclTest, TimeCommand) {
  std::string r = ev("time {set x 1} 10");
  EXPECT_NE(r.find("microseconds per iteration"), std::string::npos);
}

TEST_F(TclTest, CommandsEvaluatedCounter) {
  uint64_t before = in.commands_evaluated();
  ev("set a 1; set b 2");
  EXPECT_EQ(in.commands_evaluated(), before + 2);
}

TEST_F(TclTest, SwitchCommand) {
  EXPECT_EQ(ev("switch b {a {set r 1} b {set r 2} default {set r 3}}"), "2");
  EXPECT_EQ(ev("switch z {a {set r 1} default {set r 3}}"), "3");
  EXPECT_EQ(ev("switch z {a {set r 1}}"), "");
  EXPECT_EQ(ev("switch -glob foo.tcl {*.tcl {set r script} default {set r other}}"), "script");
  EXPECT_EQ(ev("switch -exact -- -glob {-glob {set r dash} default {set r no}}"), "dash");
  // Flat form and fall-through.
  EXPECT_EQ(ev("switch b a {set r 1} b {set r 2}"), "2");
  EXPECT_EQ(ev("switch a {a - b {set r shared} default {set r d}}"), "shared");
  EXPECT_THROW(ev("switch x {a}"), TclError);
}

TEST_F(TclTest, DeepListStructure) {
  ev("set l [list [list 1 2] [list 3 [list 4 5]]]");
  EXPECT_EQ(ev("lindex $l 1 1 0"), "4");
}

}  // namespace
}  // namespace ilps::tcl
