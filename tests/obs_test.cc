// src/obs tests: ring-buffer wraparound, disabled-tracer cost model,
// multi-rank merge ordering, Chrome trace JSON well-formedness, histogram
// percentiles, and utilization accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/runner.h"

using namespace ilps;

namespace {

// Enables tracing for one test body and restores the env-derived default
// afterwards, so test order never leaks state.
struct TraceOn {
  bool prev_trace = obs::trace_enabled();
  bool prev_metrics = obs::metrics_enabled();
  TraceOn() {
    obs::set_trace_enabled(true);
    obs::set_metrics_enabled(true);
  }
  ~TraceOn() {
    obs::set_trace_enabled(prev_trace);
    obs::set_metrics_enabled(prev_metrics);
  }
};

// Minimal recursive-descent JSON syntax checker — enough to prove the
// exporter emits well-formed JSON without a JSON library dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool literal(const char* word) {
    size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

const char* kSmallProgram = R"(
proc swift:main {} {
  set ids [list]
  for {set i 0} {$i < 12} {incr i} {
    set x [turbine::allocate integer]
    lappend ids $x
    turbine::put_work "turbine::store_integer $x $i"
  }
  turbine::rule $ids "puts done" type LOCAL
}
)";

runtime::RunResult run_traced() {
  TraceOn on;
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  return runtime::run_program(cfg, kSmallProgram);
}

}  // namespace

// ---- ring buffer ----

TEST(ObsTracer, WraparoundKeepsNewestEvents) {
  obs::Tracer t;
  t.init(/*rank=*/7, /*capacity=*/16);
  for (int i = 0; i < 40; ++i) {
    t.emit(obs::EventKind::kMpiSend, obs::Phase::kInstant, i, 0);
  }
  EXPECT_EQ(t.count(), 40u);
  EXPECT_EQ(t.dropped(), 24u);
  auto events = t.events();
  ASSERT_EQ(events.size(), 16u);
  // Oldest-first and exactly the newest 16 (a = 24..39).
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<int64_t>(24 + i));
    EXPECT_EQ(events[i].rank, 7);
  }
  // Timestamps are monotone within one rank's buffer.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t, events[i - 1].t);
  }
}

TEST(ObsTracer, RingIsReusedNotGrown) {
  obs::Tracer t;
  t.init(0, 32);
  for (int i = 0; i < 10000; ++i) {
    t.emit(obs::EventKind::kAdlbPut, obs::Phase::kInstant, i, 0);
  }
  // The ring never exceeds its capacity no matter how many events pass
  // through — the emit path stores into preallocated slots.
  EXPECT_EQ(t.events().size(), 32u);
  EXPECT_EQ(t.dropped(), 10000u - 32u);
}

// ---- disabled path ----

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  // No tracer attached on this thread: emit must be a no-op.
  ASSERT_EQ(obs::current(), nullptr);
  obs::emit(obs::EventKind::kTaskRun, obs::Phase::kBegin, 1, 2);
  obs::instant(obs::EventKind::kRankDead, 3);
  { obs::Span span(obs::EventKind::kCkptWrite, 1, 2); }
  EXPECT_EQ(obs::current(), nullptr);
}

TEST(ObsTracer, RunWithTracingOffProducesEmptyTrace) {
  bool prev = obs::trace_enabled();
  obs::set_trace_enabled(false);
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  auto result = runtime::run_program(cfg, kSmallProgram);
  obs::set_trace_enabled(prev);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_TRUE(result.contains("done"));
}

// ---- multi-rank merge + export ----

TEST(ObsSession, MergedTraceIsTimeOrderedAndCoversRanks) {
  auto result = run_traced();
  ASSERT_FALSE(result.trace.empty());
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i - 1].t, result.trace[i].t);
  }
  // Every rank of the 4-rank world shows up (engine, 2 workers, server).
  bool seen[4] = {false, false, false, false};
  for (const auto& e : result.trace) {
    ASSERT_GE(e.rank, 0);
    ASSERT_LT(e.rank, 4);
    seen[e.rank] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  // The run's lifecycle markers are present: task spans on workers,
  // server handling, and the termination decision.
  auto count_kind = [&](obs::EventKind k, obs::Phase ph) {
    return std::count_if(result.trace.begin(), result.trace.end(), [&](const obs::Event& e) {
      return e.kind == k && e.ph == ph;
    });
  };
  // 12 worker tasks plus any engine-side control tasks; every span closes.
  auto begins = count_kind(obs::EventKind::kTaskRun, obs::Phase::kBegin);
  EXPECT_GE(begins, 12);
  EXPECT_EQ(count_kind(obs::EventKind::kTaskRun, obs::Phase::kEnd), begins);
  EXPECT_GT(count_kind(obs::EventKind::kServerHandle, obs::Phase::kBegin), 0);
  EXPECT_GT(count_kind(obs::EventKind::kShutdown, obs::Phase::kInstant), 0);
}

TEST(ObsExport, ChromeTraceJsonParses) {
  auto result = run_traced();
  ASSERT_FALSE(result.trace.empty());
  std::vector<std::string> roles = {"engine", "worker", "worker", "server"};
  std::string json = obs::chrome_trace_json(result.trace, roles);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  // Spot-check the trace-event schema.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"task.run\""), std::string::npos);
  EXPECT_NE(json.find("rank 3 (server)"), std::string::npos);
}

TEST(ObsExport, MetricsJsonParses) {
  auto result = run_traced();
  std::vector<std::string> roles = {"engine", "worker", "worker", "server"};
  auto usage = obs::utilization(result.trace, roles);
  std::string json = obs::metrics_json(obs::metrics(), usage);
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  EXPECT_NE(json.find("\"worker.tasks\": 12"), std::string::npos);
}

TEST(ObsExport, UtilizationCountsBusySpans) {
  // Synthetic trace: rank 0 busy [1.0, 1.4] via nested spans (union must
  // not double-count), rank 1 idle with only instants.
  std::vector<obs::Event> events;
  auto add = [&](double t, int rank, obs::EventKind k, obs::Phase ph) {
    obs::Event e;
    e.t = t;
    e.rank = rank;
    e.kind = k;
    e.ph = ph;
    events.push_back(e);
  };
  add(1.0, 0, obs::EventKind::kServerHandle, obs::Phase::kBegin);
  add(1.1, 0, obs::EventKind::kCkptWrite, obs::Phase::kBegin);
  add(1.3, 0, obs::EventKind::kCkptWrite, obs::Phase::kEnd);
  add(1.4, 0, obs::EventKind::kServerHandle, obs::Phase::kEnd);
  add(1.0, 1, obs::EventKind::kMpiSend, obs::Phase::kInstant);
  add(2.0, 1, obs::EventKind::kMpiRecv, obs::Phase::kInstant);
  std::stable_sort(events.begin(), events.end(),
                   [](const obs::Event& a, const obs::Event& b) { return a.t < b.t; });

  auto usage = obs::utilization(events, {"server", "worker"});
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_NEAR(usage[0].busy_seconds, 0.4, 1e-9);
  EXPECT_NEAR(usage[0].window_seconds, 1.0, 1e-9);
  EXPECT_NEAR(usage[0].busy_fraction, 0.4, 1e-9);
  EXPECT_EQ(usage[0].role, "server");
  EXPECT_NEAR(usage[1].busy_seconds, 0.0, 1e-9);
  EXPECT_EQ(usage[1].events, 2u);
}

// ---- histograms ----

TEST(ObsMetrics, HistogramPercentilesNearestRank) {
  obs::Histogram h;
  for (int i = 100; i >= 1; --i) h.record(i);  // insertion order must not matter
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
}

TEST(ObsMetrics, HistogramEdgeCases) {
  obs::Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);

  obs::Histogram one;
  one.record(42.0);
  EXPECT_DOUBLE_EQ(one.percentile(1), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one.percentile(100), 42.0);

  obs::Histogram two;
  two.record(10.0);
  two.record(20.0);
  // Nearest-rank: ceil(0.5 * 2) = 1 -> first sample.
  EXPECT_DOUBLE_EQ(two.percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(two.percentile(51), 20.0);
}

TEST(ObsMetrics, RegistryCountersAndGauges) {
  obs::Metrics m;
  m.counter("a.count").add(3);
  m.counter("a.count").add(2);
  m.gauge("b.value").set(1.5);
  EXPECT_EQ(m.counter("a.count").value(), 5u);
  EXPECT_DOUBLE_EQ(m.gauge("b.value").value(), 1.5);
  auto counters = m.counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "a.count");
  m.clear();
  EXPECT_TRUE(m.counters().empty());
}

// A resident service feeds its latency histograms indefinitely; retention
// must be bounded no matter the sample count. 10M samples is hours of a
// saturated service — the reservoir has to hold them under a fixed byte
// budget while count/sum/min/max stay exact.
TEST(ObsMetrics, ReservoirBoundsMemoryUnderTenMillionSamples) {
  obs::Histogram h;
  constexpr uint64_t kSamples = 10'000'000;
  for (uint64_t i = 0; i < kSamples; ++i) {
    h.record(static_cast<double>(i % 1000) * 1e-6);
  }
  EXPECT_EQ(h.count(), kSamples);
  EXPECT_LE(h.retained(), obs::Histogram::kReservoirCap);
  // The budget: the full reservoir plus vector growth slack, and not one
  // byte per excess sample.
  EXPECT_LE(h.sample_bytes(), obs::Histogram::kReservoirCap * sizeof(double) * 2);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(999) * 1e-6);
  EXPECT_NEAR(h.sum(), kSamples * 499.5e-6, kSamples * 1e-12);
  // Percentiles stay a sane estimate of the (uniform 0..999us) input.
  const double p50 = h.percentile(50);
  EXPECT_GT(p50, 400e-6);
  EXPECT_LT(p50, 600e-6);
}

// ---- rolling-window histograms ----

TEST(ObsMetrics, WindowHistogramBucketMapping) {
  EXPECT_EQ(obs::WindowHistogram::bucket_of(0.0), 0u);
  EXPECT_EQ(obs::WindowHistogram::bucket_of(obs::WindowHistogram::kBucketFloor), 0u);
  EXPECT_EQ(obs::WindowHistogram::bucket_of(1e12), obs::WindowHistogram::kBuckets - 1);
  size_t prev = 0;
  for (double v = 2e-6; v < 10.0; v *= 2) {
    const size_t b = obs::WindowHistogram::bucket_of(v);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, obs::WindowHistogram::kBuckets);
    prev = b;
    // The bucket's representative (geometric mid) stays within one growth
    // factor of any value mapped into it.
    const double rep = obs::WindowHistogram::bucket_value(b);
    EXPECT_GT(rep, v / obs::WindowHistogram::kBucketGrowth);
    EXPECT_LT(rep, v * obs::WindowHistogram::kBucketGrowth);
  }
}

TEST(ObsMetrics, WindowHistogramRotationAgesOutOldSamples) {
  obs::WindowHistogram w(/*window_seconds=*/8.0);  // 1 s sub-windows
  for (int i = 0; i < 100; ++i) w.record_at(0.010, /*now=*/100.0);
  EXPECT_EQ(w.snapshot_at(100.0).count, 100u);
  // Still visible just inside the window...
  EXPECT_EQ(w.snapshot_at(107.0).count, 100u);
  // ...gone once the window rotates past its sub-window.
  EXPECT_EQ(w.snapshot_at(109.0).count, 0u);

  // Partial aging: two bursts in different sub-windows age out separately.
  w.reset();
  for (int i = 0; i < 10; ++i) w.record_at(0.001, 200.0);
  for (int i = 0; i < 5; ++i) w.record_at(0.002, 205.0);
  EXPECT_EQ(w.snapshot_at(205.0).count, 15u);
  EXPECT_EQ(w.snapshot_at(208.5).count, 5u);   // first burst aged out
  EXPECT_EQ(w.snapshot_at(213.5).count, 0u);

  // Sub-window slots are reused in place: a long-running recorder never
  // grows the structure.
  for (double now = 300.0; now < 400.0; now += 0.25) w.record_at(0.001, now);
  EXPECT_LE(w.snapshot_at(399.75).count,
            4 * 8 + 4u);  // at most one window's worth visible
}

TEST(ObsMetrics, WindowHistogramPercentilesWithinBucketResolution) {
  obs::WindowHistogram w;  // default 60 s window
  for (int i = 1; i <= 1000; ++i) w.record_at(i * 1e-3, /*now=*/10.0);
  const obs::WindowHistogram::Snapshot s = w.snapshot_at(10.0);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.sum, 500.5, 1e-9);
  // Log-spaced buckets: each percentile lands within one growth factor of
  // the exact value (uniform 1ms..1000ms input).
  const double g = obs::WindowHistogram::kBucketGrowth;
  EXPECT_GT(s.p50, 0.500 / g);
  EXPECT_LT(s.p50, 0.500 * g);
  EXPECT_GT(s.p99, 0.990 / g);
  EXPECT_LT(s.p99, 0.990 * g);
  EXPECT_GT(s.p999, 0.999 / g);
  EXPECT_LT(s.p999, 0.999 * g);

  obs::WindowHistogram empty;
  const obs::WindowHistogram::Snapshot e = empty.snapshot_at(1.0);
  EXPECT_EQ(e.count, 0u);
  EXPECT_DOUBLE_EQ(e.p50, 0.0);
}

TEST(ObsMetrics, RegistryWindowHistogramsAreSharedByName) {
  obs::Metrics m;
  obs::WindowHistogram& w1 = m.window_histogram("x.seconds", 30.0);
  obs::WindowHistogram& w2 = m.window_histogram("x.seconds", 99.0);  // window from first creation
  EXPECT_EQ(&w1, &w2);
  EXPECT_DOUBLE_EQ(w2.window_seconds(), 30.0);
  w1.record_at(0.5, 1.0);
  EXPECT_EQ(m.window_histograms().size(), 1u);
  m.reset_histograms();
  EXPECT_EQ(w1.snapshot_at(1.0).count, 0u);
}

// ---- request-scoped capture ----

TEST(ObsRequestCapture, ScopedEventsAreCapturedAndStitched) {
  TraceOn on;
  obs::Tracer t;
  t.init(/*rank=*/2, /*capacity=*/64);
  obs::attach(&t);
  obs::req_capture_begin(42);
  EXPECT_TRUE(obs::req_capture_active());
  // Submit happens on a user thread with no tracer: off-rank note.
  obs::req_capture_note_off_rank(42, obs::EventKind::kReqSubmit, obs::Phase::kInstant, 42);
  {
    obs::RequestScope rs(42);
    obs::instant(obs::EventKind::kRuleFired, 1);
    obs::Span span(obs::EventKind::kTaskRun, 7);
  }
  obs::instant(obs::EventKind::kRuleFired, 2);  // outside any scope: ring only
  {
    obs::RequestScope rs(7);  // scoped but never registered: ring only
    obs::instant(obs::EventKind::kRuleFired, 3);
  }
  obs::detach();

  std::vector<obs::Event> trace = obs::req_capture_take(42);
  ASSERT_EQ(trace.size(), 4u);  // submit + rule fire + task Begin/End
  EXPECT_EQ(trace.front().kind, obs::EventKind::kReqSubmit);
  EXPECT_EQ(trace.front().rank, -1);
  for (const obs::Event& e : trace) EXPECT_EQ(e.req, 42);
  for (size_t i = 1; i < trace.size(); ++i) EXPECT_GE(trace[i].t, trace[i - 1].t);
  // Ring events outside the registered scope kept their own attribution.
  auto ring = t.events();
  ASSERT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.back().req, 7);

  // take() drains: the registry empties and the fast-path gate drops.
  EXPECT_FALSE(obs::req_capture_active());
  EXPECT_TRUE(obs::req_capture_take(42).empty());
  EXPECT_STREQ(obs::kind_name(obs::EventKind::kReqSubmit), "req.submit");
  EXPECT_STREQ(obs::kind_category(obs::EventKind::kReqDone), "serve");
}

TEST(ObsRequestCapture, PerRequestRetentionIsCapped) {
  TraceOn on;
  obs::Tracer t;
  t.init(0, 16);
  obs::attach(&t);
  obs::req_capture_begin(5);
  {
    obs::RequestScope rs(5);
    for (size_t i = 0; i < obs::kReqCaptureCap + 100; ++i) {
      obs::instant(obs::EventKind::kAdlbPut, static_cast<int64_t>(i));
    }
  }
  obs::detach();
  std::vector<obs::Event> trace = obs::req_capture_take(5);
  EXPECT_EQ(trace.size(), obs::kReqCaptureCap);
  EXPECT_EQ(trace.front().a, 0);  // oldest kept; overflow drops the newest
}

// ---- concurrency (exercised under TSAN in CI) ----

// Snapshot readers race registry mutation: new metrics registered by name
// while counters/gauges/histograms are being snapshotted and queried.
TEST(ObsMetrics, ConcurrentRegistrySnapshotWhileMutating) {
  obs::Metrics m;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&m, w] {
      for (int i = 0; i < 4000; ++i) {
        m.counter("c." + std::to_string(i % 8)).add();
        m.gauge("g." + std::to_string(w)).set(i);
        m.histogram("h.lat").record(i * 1e-6);
        m.window_histogram("w.lat").record(i * 1e-6);
      }
    });
  }
  std::thread reader([&m, &stop] {
    while (!stop.load()) {
      (void)m.counters();
      (void)m.gauges();
      for (const auto& [name, h] : m.histograms()) {
        (void)name;
        (void)h->percentile(99);
        (void)h->count();
      }
      for (const auto& [name, w] : m.window_histograms()) {
        (void)name;
        (void)w->snapshot();
      }
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(m.counter("c.0").value(), 3u * 4000u / 8u);
  EXPECT_EQ(m.histogram("h.lat").count(), 3u * 4000u);
}

// Recorders race snapshots across real sub-window rotations (a tiny
// window forces slot reuse while readers merge).
TEST(ObsMetrics, ConcurrentWindowHistogramRotation) {
  obs::WindowHistogram w(/*window_seconds=*/0.04);  // 5 ms sub-windows
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      (void)w.snapshot();
      (void)w.percentile(99);
      (void)w.count();
    }
  });
  std::vector<std::thread> writers;
  for (int i = 0; i < 3; ++i) {
    writers.emplace_back([&w] {
      Timer t;
      while (t.elapsed() < 0.12) w.record(0.001);  // spans ~24 rotations
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  // Whatever remains is at most one window of the most recent records.
  (void)w.snapshot();
  SUCCEED();
}
