// swift-verify: one positive and one negative case per diagnostic, the
// soundness corner cases the analyzer must NOT reject, and the end-to-end
// runtime complement (DeadlockError naming the unfilled variable).
#include "analysis/analysis.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "runtime/runner.h"
#include "swift/compiler.h"

namespace ilps::analysis {
namespace {

Report lint(const std::string& source) { return analyze(swift::parse_swift(source)); }

bool has_kind(const Report& r, DiagKind kind, Severity sev, const std::string& var = "") {
  for (const auto& d : r.diagnostics) {
    if (d.kind == kind && d.severity == sev && (var.empty() || d.var == var)) return true;
  }
  return false;
}

// ---- unassigned read ----

TEST(Analysis, UnassignedReadIsError) {
  Report r = lint(R"(
    int x;
    int y = x + 1;
    printf("%d", y);
  )");
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(has_kind(r, DiagKind::kUnassignedRead, Severity::kError, "x"));
  // The diagnostic cites the variable and its source line.
  for (const auto& d : r.diagnostics) {
    if (d.kind == DiagKind::kUnassignedRead && d.var == "x") {
      EXPECT_EQ(d.line, 3);
      EXPECT_NE(d.message.find("\"x\""), std::string::npos);
      EXPECT_NE(d.message.find("line 3"), std::string::npos);
    }
  }
}

TEST(Analysis, AssignedReadIsClean) {
  Report r = lint(R"(
    int x = 4;
    int y = x + 1;
    printf("%d", y);
  )");
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, BranchAssignedReadIsNotAnError) {
  // x gets a value on only one path: the static pass must accept (the
  // runtime stuck report owns this case).
  Report r = lint(R"(
    int c = toint("0");
    int x;
    if (c == 1) {
      x = 1;
    }
    int y = x + 1;
    printf("%d", y);
  )");
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, NeverWrittenArrayIsOnlyAWarning) {
  // Container closure goes through write refcounts; an empty array is
  // legal (size 0), so this must not be a hard error.
  Report r = lint(R"(
    int A[];
    int n = size(A);
    printf("%d", n);
  )");
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(has_kind(r, DiagKind::kUnassignedRead, Severity::kWarning, "A"));
}

// ---- double write ----

TEST(Analysis, DoubleWriteIsError) {
  Report r = lint(R"(
    int x;
    x = 1;
    x = 2;
    printf("%d", x);
  )");
  EXPECT_TRUE(has_kind(r, DiagKind::kDoubleWrite, Severity::kError, "x"));
}

TEST(Analysis, BothBranchesOverPriorWriteIsError) {
  Report r = lint(R"(
    int c = 1;
    int x = 5;
    if (c == 1) {
      x = 1;
    } else {
      x = 2;
    }
    printf("%d", x);
  )");
  EXPECT_TRUE(has_kind(r, DiagKind::kDoubleWrite, Severity::kError, "x"));
}

TEST(Analysis, ExclusiveBranchWritesAreClean) {
  Report r = lint(R"(
    int c = 1;
    int x;
    if (c == 1) {
      x = 1;
    } else {
      x = 2;
    }
    printf("%d", x);
  )");
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, ConditionalSecondWriteIsWarning) {
  Report r = lint(R"(
    int c = 1;
    int x = 1;
    if (c == 2) {
      x = 2;
    }
    printf("%d", x);
  )");
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(has_kind(r, DiagKind::kMaybeDoubleWrite, Severity::kWarning, "x"));
}

TEST(Analysis, LoopWriteToOuterScalarIsWarning) {
  Report r = lint(R"(
    int s;
    foreach i in [0:3] {
      s = i;
    }
    printf("%d", s);
  )");
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(has_kind(r, DiagKind::kMaybeDoubleWrite, Severity::kWarning, "s"));
}

// ---- wait cycles ----

TEST(Analysis, WaitCycleIsError) {
  Report r = lint(R"(
    int x;
    int y = x + 1;
    x = y;
  )");
  EXPECT_TRUE(has_kind(r, DiagKind::kWaitCycle, Severity::kError));
}

TEST(Analysis, SelfWaitIsError) {
  Report r = lint(R"(
    int x;
    x = x + 1;
  )");
  EXPECT_TRUE(has_kind(r, DiagKind::kWaitCycle, Severity::kError, "x"));
}

TEST(Analysis, StraightChainHasNoCycle) {
  Report r = lint(R"(
    int a = 1;
    int b = a + 1;
    int c = b + a;
    printf("%d", c);
  )");
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, CompositeCallUsesTrueDepsNotAllArgs) {
  // konst's output never depends on its input, so y = konst(x); x = y is
  // NOT a cycle — the runtime completes it (r=42 fires unconditionally).
  // An all-args approximation would falsely reject this program.
  Report r = lint(R"(
    (int r) konst (int a) {
      r = 42;
    }
    int x;
    int y = konst(x);
    x = y;
  )");
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, CompositeCarriedCycleIsError) {
  // ident's output truly depends on its input: the cycle is real.
  Report r = lint(R"(
    (int r) ident (int a) {
      r = a;
    }
    int x;
    int y = ident(x);
    x = y;
  )");
  EXPECT_TRUE(has_kind(r, DiagKind::kWaitCycle, Severity::kError));
}

// ---- unused values ----

TEST(Analysis, UnreadVariableIsWarning) {
  Report r = lint("int x = 5;");
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(has_kind(r, DiagKind::kUnusedValue, Severity::kWarning, "x"));
}

TEST(Analysis, DiscardedLeafOutputsAreWarned) {
  Report r = lint(R"(
    (int o) f (int i) [ "set <<o>> <<i>>" ];
    f(1);
  )");
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(has_kind(r, DiagKind::kUnusedValue, Severity::kWarning, "f"));
}

TEST(Analysis, ConsumedValuesAreClean) {
  Report r = lint(R"(
    (int o) f (int i) [ "set <<o>> <<i>>" ];
    int y = f(1);
    printf("%d", y);
  )");
  EXPECT_FALSE(r.has_errors());
  EXPECT_FALSE(has_kind(r, DiagKind::kUnusedValue, Severity::kWarning));
}

// ---- interprocedural ----

TEST(Analysis, UnassignedOutputIsError) {
  Report r = lint(R"(
    (int r) bad (int a) {
      int t = a;
      printf("%d", t);
    }
    int y = bad(1);
    printf("%d", y);
  )");
  EXPECT_TRUE(has_kind(r, DiagKind::kUnassignedRead, Severity::kError, "r"));
}

TEST(Analysis, MultiOutputCompositeTracksEachOutput) {
  Report r = lint(R"(
    (int a, int b) pair (int x) {
      a = x;
      b = x + 1;
    }
    int p;
    int q;
    p, q = pair(3);
    printf("%d %d", p, q);
  )");
  EXPECT_FALSE(r.has_errors());
}

TEST(Analysis, RecursionDoesNotFalselyError) {
  // The self-call gets an optimistic summary; no unassigned-read,
  // double-write, or cycle may be invented for it.
  Report r = lint(R"(
    (int r) f (int n) {
      if (n == 0) {
        r = 0;
      } else {
        r = f(n - 1);
      }
    }
    int y = f(3);
    printf("%d", y);
  )");
  EXPECT_FALSE(r.has_errors());
}

// ---- repo programs must pass unchanged ----

TEST(Analysis, ShippedScriptsPass) {
  for (const char* rel : {"/scripts/fig1.swift", "/scripts/interlang.swift",
                          "/scripts/arrays.swift"}) {
    std::ifstream in(std::string(ILPS_SOURCE_DIR) + rel);
    ASSERT_TRUE(in.good()) << rel;
    std::ostringstream src;
    src << in.rdbuf();
    Report r = lint(src.str());
    EXPECT_FALSE(r.has_errors()) << rel << ":\n" << r.to_string();
  }
}

// ---- malformed programs stay the compiler's business ----

TEST(Analysis, MalformedProgramsDoNotCrashTheAnalyzer) {
  // Undefined names, bad array use, arity mismatches: analyze() skips
  // them (possibly with its own diagnostics) and never throws.
  for (const char* src : {
           "x = 1;",
           "int a[]; a = 1;",
           "int s; s[0] = 1;",
           "printf(\"%d\", nothing);",
           "(int o) f (int i) [ \"t\" ]; int y = f(1, 2); printf(\"%d\", y);",
           "(int a, int b) two (int x) [ \"t\" ]; int a; a = two(1);",
       }) {
    EXPECT_NO_THROW({ lint(src); }) << src;
  }
}

// ---- end to end: compile-time rejection and runtime stuck report ----

TEST(Analysis, CompileRejectsDeadlockWithVariableAndLine) {
  try {
    swift::compile("int x;\nint y = x + 1;\nprintf(\"%d\", y);\n");
    FAIL() << "expected SwiftError";
  } catch (const swift::SwiftError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("swift-verify"), std::string::npos) << what;
    EXPECT_NE(what.find("\"x\""), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(Analysis, RuntimeDeadlockThrowsDeadlockErrorNamingVariable) {
  // Passes the static pass (x assigned on one branch) but deadlocks at
  // run time; the engine's quiescence check must name the unfilled x.
  runtime::Config cfg;
  try {
    runtime::run_program(cfg, swift::compile(R"(
      int c = toint("0");
      int x;
      if (c == 1) {
        x = 1;
      }
      int y = x + 1;
      printf("y=%d", y);
    )"));
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("\"x\""), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ilps::analysis
