// Property sweeps for the interlanguage type-conversion boundary (§III.A:
// "Swift/T variables are automatically converted to the appropriate Tcl
// types"): values must survive the round trip Swift -> Turbine store ->
// leaf language -> store -> Swift, for every scalar type and for blobs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/strings.h"
#include "python/interp.h"
#include "rlang/interp.h"
#include "runtime/runner.h"
#include "swift/compiler.h"
#include "tcl/interp.h"

namespace ilps {
namespace {

// ---- integer round trips through every interpreter ----

class IntRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(IntRoundTrip, ThroughTcl) {
  tcl::Interp t;
  int64_t v = GetParam();
  EXPECT_EQ(t.eval("set x " + std::to_string(v) + "; expr $x + 0"), std::to_string(v));
}

TEST_P(IntRoundTrip, ThroughPython) {
  py::Interpreter p;
  int64_t v = GetParam();
  EXPECT_EQ(p.eval("x = " + std::to_string(v), "x"), std::to_string(v));
  EXPECT_EQ(p.eval("", "int('" + std::to_string(v) + "')"), std::to_string(v));
}

TEST_P(IntRoundTrip, ThroughR) {
  r::Interpreter r;
  int64_t v = GetParam();
  // R numerics are doubles; 2^53 bounds exact integer round trips.
  if (std::llabs(v) > (1LL << 53)) GTEST_SKIP();
  EXPECT_EQ(r.eval("x <- " + std::to_string(v), "x"), std::to_string(v));
}

INSTANTIATE_TEST_SUITE_P(Values, IntRoundTrip,
                         ::testing::Values(0, 1, -1, 42, -42, 65535, -65536, 1000000007,
                                           -999999937, (1LL << 40), -(1LL << 40)));

// ---- doubles through the Tcl string boundary ----

class DoubleRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(DoubleRoundTrip, FormatParseIdentity) {
  double v = GetParam();
  auto parsed = str::parse_double(str::format_double(v));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, v);
}

TEST_P(DoubleRoundTrip, ThroughTclExpr) {
  tcl::Interp t;
  double v = GetParam();
  std::string out = t.eval("set x " + str::format_double(v) + "; expr $x * 1.0");
  EXPECT_DOUBLE_EQ(*str::parse_double(out), v);
}

INSTANTIATE_TEST_SUITE_P(Values, DoubleRoundTrip,
                         ::testing::Values(0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 6.02214076e23,
                                           -2.2250738585072014e-308, 3.141592653589793,
                                           1e-9, 123456789.123456789));

// ---- strings with awkward content through the full distributed stack ----

class StringRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(StringRoundTrip, SwiftStoreAndEcho) {
  const std::string& value = GetParam();
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 1;
  // Store through a leaf task on a worker, print through a LOCAL rule on
  // the engine: the value crosses the rank boundary twice. The echo proc
  // defers retrieval to fire time, and the retrieved value is never
  // re-parsed as script (substitution results are words, not code).
  std::string program = R"(
    proc echo_it {s} { puts "got:[turbine::retrieve $s]:end" }
    set s [turbine::allocate string]
    turbine::put_work "turbine::store_string $s [list VALUE]"
    turbine::rule [list $s] "echo_it $s" type LOCAL
  )";
  size_t pos = program.find("VALUE");
  program.replace(pos, 5, tcl::list_quote(value));
  auto result = runtime::run_program(cfg, program);
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], "got:" + value + ":end");
}

INSTANTIATE_TEST_SUITE_P(Values, StringRoundTrip,
                         ::testing::Values(std::string("plain"), std::string("with space"),
                                           std::string("tab\there"), std::string("a{b}c"),
                                           std::string("$dollar [bracket]"),
                                           std::string("unicode: \xc3\xa9\xc3\xbc"),
                                           std::string("semi;colon"), std::string("back\\slash")));

// ---- blob bytes through the distributed store ----

TEST(BlobRoundTrip, BinaryThroughStore) {
  runtime::Config cfg;
  cfg.engines = 1;
  cfg.workers = 2;
  cfg.servers = 2;
  auto result = runtime::run_program(cfg, R"(
    set b [turbine::allocate blob]
    set h [blobutils::from_floats {1.5 -2.25 1e300 0.0 -0.5}]
    turbine::store_blob $b $h
    set h2 [turbine::retrieve_blob $b]
    puts "size=[blobutils::size $h2] vals=[blobutils::to_floats $h2]"
  )");
  ASSERT_EQ(result.lines.size(), 1u);
  EXPECT_EQ(result.lines[0], "size=40 vals=1.5 -2.25 1e+300 0.0 -0.5");
}

// ---- Swift <-> Python <-> R value agreement ----

TEST(CrossLanguage, NumericAgreement) {
  py::Interpreter p;
  r::Interpreter r;
  tcl::Interp t;
  for (int i = -5; i <= 5; ++i) {
    std::string si = std::to_string(i);
    std::string py = p.eval("v = " + si + " * 7 + 1", "v");
    std::string rr = r.eval("v <- " + si + " * 7 + 1", "v");
    std::string tc = t.eval("expr " + si + " * 7 + 1");
    EXPECT_EQ(py, rr) << "i=" << i;
    EXPECT_EQ(py, tc) << "i=" << i;
  }
}

TEST(CrossLanguage, FloorDivisionConventionsDiffer) {
  // Documented semantic nuance: Tcl and Python floor, C truncates. The
  // interpreters must each be faithful to their own language.
  py::Interpreter p;
  tcl::Interp t;
  r::Interpreter r;
  EXPECT_EQ(p.eval("", "-7 // 2"), "-4");
  EXPECT_EQ(t.eval("expr -7 / 2"), "-4");
  EXPECT_EQ(r.eval("-7 %/% 2"), "-4");
  EXPECT_EQ(p.eval("", "-7 % 2"), "1");
  EXPECT_EQ(t.eval("expr -7 % 2"), "1");
  EXPECT_EQ(r.eval("-7 %% 2"), "1");
}

}  // namespace
}  // namespace ilps
