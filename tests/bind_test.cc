// BindGen: header parsing, FortWrap-lite, native adapters, and generated
// Tcl bindings (the Fig. 3 pipeline end to end).
#include <gtest/gtest.h>

#include <cmath>

#include "bind/bindgen.h"
#include "tcl/interp.h"

namespace ilps::bind {
namespace {

// ---- the "user's C library" ----

int add_ints(int a, int b) { return a + b; }
double scale(double x, double factor) { return x * factor; }
std::string greet(const std::string& name) { return "hello " + name; }
double vec_sum(const double* data, int n) {
  double s = 0;
  for (int i = 0; i < n; ++i) s += data[i];
  return s;
}
void fill_ramp(double* data, int n) {
  for (int i = 0; i < n; ++i) data[i] = static_cast<double>(i);
}

TEST(ParseHeader, SimplePrototypes) {
  auto fns = parse_header(R"(
    int add_ints(int a, int b);
    double scale(double x, double factor);
    void fill_ramp(double* data, int n);
  )");
  ASSERT_EQ(fns.size(), 3u);
  EXPECT_EQ(fns[0].name, "add_ints");
  EXPECT_EQ(fns[0].return_type, CType::kInt);
  ASSERT_EQ(fns[0].params.size(), 2u);
  EXPECT_EQ(fns[0].params[0].type, CType::kInt);
  EXPECT_EQ(fns[0].params[0].name, "a");
  EXPECT_EQ(fns[1].return_type, CType::kDouble);
  EXPECT_EQ(fns[2].return_type, CType::kVoid);
  EXPECT_EQ(fns[2].params[0].type, CType::kDoublePtr);
}

TEST(ParseHeader, CommentsAndExternC) {
  auto fns = parse_header(R"(
    // a comment
    extern "C" {
      /* block
         comment */
      double scale(double x, double factor);  // trailing
    }
  )");
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "scale");
}

TEST(ParseHeader, PointerAndStringTypes) {
  auto fns = parse_header("const char* greet(const char* name); void f(void* p, long n);");
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].return_type, CType::kString);
  EXPECT_EQ(fns[0].params[0].type, CType::kString);
  EXPECT_EQ(fns[1].params[0].type, CType::kVoidPtr);
  EXPECT_EQ(fns[1].params[1].type, CType::kInt);
}

TEST(ParseHeader, ArraySuffix) {
  auto fns = parse_header("double mean_of(double values[], int n);");
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].params[0].type, CType::kDoublePtr);
}

TEST(ParseHeader, VoidParamList) {
  auto fns = parse_header("int get_version(void);");
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(fns[0].params.empty());
}

TEST(ParseHeader, RejectsUnsupported) {
  EXPECT_THROW(parse_header("struct Foo make_foo();"), BindError);
  EXPECT_THROW(parse_header("int broken(int"), BindError);
  EXPECT_THROW(parse_header("char** argv_style(int n);"), BindError);
}

TEST(ToPrototype, RoundTripText) {
  auto fns = parse_header("double scale(double x, double factor);");
  EXPECT_EQ(to_prototype(fns[0]), "double scale(double x, double factor)");
}

TEST(FortWrap, Subroutine) {
  std::string proto = fortwrap(R"(
    subroutine heat_step(n, dt, u)
      integer :: n
      real(8) :: dt
      real(8) :: u(n)
    end subroutine
  )");
  EXPECT_EQ(proto, "void heat_step(int n, double dt, double* u);");
  // And the output is itself parseable C.
  auto fns = parse_header(proto);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].params[2].type, CType::kDoublePtr);
}

TEST(FortWrap, Function) {
  std::string proto = fortwrap(R"(
    real(8) function dotprod(n, x, y)
      integer :: n
      real(8) :: x(n), y(n)
    end function
  )");
  EXPECT_EQ(proto, "double dotprod(int n, double* x, double* y);");
}

TEST(FortWrap, DoublePrecisionAndComments) {
  std::string proto = fortwrap(
      "subroutine f(a, b)  ! does things\n  double precision :: a\n  integer :: b\nend\n");
  EXPECT_EQ(proto, "void f(double a, int b);");
}

TEST(FortWrap, MalformedThrows) {
  EXPECT_THROW(fortwrap("integer :: x"), BindError);
}

TEST(NativeLibrary, TemplateAdapters) {
  NativeLibrary lib;
  lib.add("add_ints", &add_ints);
  lib.add("scale", &scale);
  const NativeFn* fn = lib.find("add_ints");
  ASSERT_NE(fn, nullptr);
  std::vector<NativeValue> args = {NativeValue(int64_t{2}), NativeValue(int64_t{3})};
  EXPECT_EQ(std::get<int64_t>((*fn)(args)), 5);
  EXPECT_EQ(lib.find("missing"), nullptr);
  EXPECT_EQ(lib.names().size(), 2u);
  std::vector<NativeValue> bad = {NativeValue(int64_t{1})};
  EXPECT_THROW((*fn)(bad), BindError);  // arity
}

class BindToTclTest : public ::testing::Test {
 protected:
  BindToTclTest() {
    blob::register_blobutils(in, blobs);
    lib.add("add_ints", &add_ints);
    lib.add("scale", &scale);
    lib.add_raw("greet", [](std::vector<NativeValue>& args) {
      return NativeValue(greet(std::get<std::string>(args[0])));
    });
    lib.add("vec_sum", &vec_sum);
    lib.add("fill_ramp", &fill_ramp);
    auto protos = parse_header(R"(
      int add_ints(int a, int b);
      double scale(double x, double factor);
      const char* greet(const char* name);
      double vec_sum(const double* data, int n);
      void fill_ramp(double* data, int n);
    )");
    bind_to_tcl(in, "mylib", protos, lib, blobs);
  }

  tcl::Interp in;
  blob::Registry blobs;
  NativeLibrary lib;
};

TEST_F(BindToTclTest, ScalarCalls) {
  EXPECT_EQ(in.eval("mylib::add_ints 20 22"), "42");
  EXPECT_EQ(in.eval("mylib::scale 3.0 1.5"), "4.5");
  EXPECT_EQ(in.eval("mylib::greet world"), "hello world");
  EXPECT_EQ(in.eval("package require mylib"), "1.0");
}

TEST_F(BindToTclTest, BlobArguments) {
  in.eval("set h [blobutils::from_floats {1.5 2.5 3.0}]");
  EXPECT_EQ(in.eval("mylib::vec_sum $h 3"), "7.0");
  // Mutating through the pointer is visible in the blob.
  in.eval("set r [blobutils::zeroes_float 4]");
  in.eval("mylib::fill_ramp $r 4");
  EXPECT_EQ(in.eval("blobutils::to_floats $r"), "0.0 1.0 2.0 3.0");
}

TEST_F(BindToTclTest, TypeErrors) {
  EXPECT_THROW(in.eval("mylib::add_ints x 1"), tcl::TclError);
  EXPECT_THROW(in.eval("mylib::scale {} 1"), tcl::TclError);
  EXPECT_THROW(in.eval("mylib::add_ints 1"), tcl::TclError);
  EXPECT_THROW(in.eval("mylib::vec_sum not_a_handle 3"), Error);
}

TEST(BindToTcl, MissingImplementationThrows) {
  tcl::Interp in;
  blob::Registry blobs;
  NativeLibrary lib;
  auto protos = parse_header("int nowhere(int x);");
  EXPECT_THROW(bind_to_tcl(in, "p", protos, lib, blobs), BindError);
}

// The full Fig. 3 story: Fortran interface -> FortWrap -> SWIG-style
// binding -> callable from (what will be) Swift-level Tcl.
TEST(Fig3Pipeline, FortranToTcl) {
  tcl::Interp in;
  blob::Registry blobs;
  blob::register_blobutils(in, blobs);
  NativeLibrary lib;
  lib.add("vec_sum", &vec_sum);
  std::string c_proto = fortwrap(R"(
    real(8) function vec_sum(data, n)
      real(8) :: data(n)
      integer :: n
    end function
  )");
  bind_to_tcl(in, "fort", parse_header(c_proto), lib, blobs);
  in.eval("set h [blobutils::from_floats {1.0 2.0 3.5}]");
  EXPECT_EQ(in.eval("fort::vec_sum $h 3"), "6.5");
}

}  // namespace
}  // namespace ilps::bind
