#!/usr/bin/env python3
"""Summarize an ILPS trace.json (and optional metrics.json).

Reads the Chrome-trace file written by a run with ILPS_TRACE=1 and prints:
  - the top-N slowest task.run spans (task id, rank, start, duration)
  - steal / rebalance counts per rank
  - per-rank busy fraction (union of busy spans vs the run window)
  - selected counters from metrics.json when present next to the trace

Usage:
  tools/trace_report.py [trace.json] [--top N]
  tools/trace_report.py [trace.json|requests.jsonl] --request ID

--request renders one serve request's cross-rank span tree (submit ->
rule fires -> task puts -> worker execution -> completion) from either a
request-stamped Chrome trace (trace.json, events carrying args.req) or
the live requests.jsonl stream a resident service writes under
ILPS_TELEMETRY_DIR.

No dependencies beyond the standard library.
"""
import argparse
import json
import os
import sys

# Span kinds whose duration counts as busy (matches obs::kind_is_busy).
BUSY = {"task.run", "server.handle", "ckpt.write", "ckpt.restore"}


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    return doc["traceEvents"]


def thread_names(events):
    names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[e["tid"]] = e["args"]["name"]
    return names


def pair_spans(events, name_filter=None):
    """Yield (name, tid, start_us, dur_us, args) for matched B/E pairs."""
    stacks = {}
    for e in events:
        ph = e.get("ph")
        if ph not in ("B", "E"):
            continue
        key = (e["tid"], e["name"])
        if name_filter and e["name"] not in name_filter:
            continue
        if ph == "B":
            stacks.setdefault(key, []).append(e)
        else:
            stack = stacks.get(key)
            if not stack:
                continue  # Begin fell off the ring buffer
            b = stack.pop()
            yield (e["name"], e["tid"], b["ts"], e["ts"] - b["ts"], b.get("args", {}))


def report(trace_path, top_n):
    events = load_events(trace_path)
    names = thread_names(events)
    real = [e for e in events if e.get("ph") in ("B", "E", "i")]
    if not real:
        print("trace contains no events")
        return
    t_lo = min(e["ts"] for e in real)
    t_hi = max(e["ts"] for e in real)
    window = max(t_hi - t_lo, 1e-9)

    print(f"{trace_path}: {len(real)} events, {len(names)} ranks, "
          f"window {window / 1e6:.3f} s")

    # ---- top-N slowest tasks ----
    tasks = sorted(pair_spans(events, {"task.run"}), key=lambda s: -s[3])
    print(f"\ntop {min(top_n, len(tasks))} slowest tasks (of {len(tasks)}):")
    print(f"  {'task':>8} {'rank':>16} {'start_s':>9} {'dur_ms':>9}")
    for name, tid, ts, dur, args in tasks[:top_n]:
        rank = names.get(tid, f"rank {tid}")
        print(f"  {args.get('a', '?'):>8} {rank:>16} {ts / 1e6:>9.3f} {dur / 1e3:>9.3f}")

    # ---- steals / rebalance ----
    steals = {}
    units = {}
    for e in events:
        if e.get("name") == "adlb.steal" and e.get("ph") == "i":
            steals[e["tid"]] = steals.get(e["tid"], 0) + 1
            units[e["tid"]] = units.get(e["tid"], 0) + e.get("args", {}).get("b", 0)
    if steals:
        print("\nsteal batches by sending rank:")
        for tid in sorted(steals):
            print(f"  {names.get(tid, f'rank {tid}'):>16}: "
                  f"{steals[tid]} batches, {units[tid]} units")
    else:
        print("\nno steal/rebalance events")

    # ---- per-rank busy fraction ----
    busy = {}
    counts = {}
    for e in real:
        counts[e["tid"]] = counts.get(e["tid"], 0) + 1
    for name, tid, ts, dur, _ in pair_spans(events, BUSY):
        busy.setdefault(tid, []).append((ts, ts + dur))
    print("\nper-rank utilization:")
    print(f"  {'rank':>16} {'events':>7} {'busy_s':>8} {'busy%':>6}")
    for tid in sorted(counts):
        merged, end = 0.0, None
        for lo, hi in sorted(busy.get(tid, [])):
            if end is None or lo > end:
                merged += hi - lo
                end = hi
            elif hi > end:
                merged += hi - end
                end = hi
        print(f"  {names.get(tid, f'rank {tid}'):>16} {counts[tid]:>7} "
              f"{merged / 1e6:>8.3f} {100.0 * merged / window:>5.1f}%")

    # ---- metrics.json, if present beside the trace ----
    metrics_path = os.path.join(os.path.dirname(trace_path) or ".", "metrics.json")
    if os.path.exists(metrics_path):
        with open(metrics_path) as f:
            m = json.load(f)
        interesting = ["worker.tasks", "adlb.puts", "adlb.matches", "adlb.requeues",
                       "engine.rules_fired", "mpi.messages", "mpi.bytes",
                       "run.attempts", "run.dead_ranks"]
        print(f"\n{metrics_path}:")
        for k in interesting:
            if k in m.get("counters", {}):
                print(f"  {k:>20}: {m['counters'][k]}")
        for name, h in m.get("histograms", {}).items():
            print(f"  {name:>20}: n={h['count']} p50={h['p50']:.6f} "
                  f"p99={h['p99']:.6f} max={h['max']:.6f}")


def request_events(path, req_id):
    """Normalized events for one request: (t_s, rank, name, ph, a, b).

    Accepts either a requests.jsonl stream (one {"type":"request",...}
    line per completed request, seconds-based timestamps) or a Chrome
    trace.json whose events carry args.req (microsecond timestamps).
    """
    if path.endswith(".jsonl"):
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("type") != "request" or rec.get("id") != req_id:
                    continue
                evs = [(e["t"], e["rank"], e["name"], e["ph"],
                        e.get("a", 0), e.get("b", 0)) for e in rec["events"]]
                return rec, sorted(evs, key=lambda e: e[0])
        return None, []
    events = load_events(path)
    names = thread_names(events)
    evs = []
    for e in events:
        if e.get("ph") not in ("B", "E", "i"):
            continue
        args = e.get("args", {})
        if args.get("req") != req_id:
            continue
        rank_name = names.get(e["tid"], f"rank {e['tid']}")
        try:
            rank = int(rank_name.split()[-1])
        except ValueError:
            rank = e["tid"]
        evs.append((e["ts"] / 1e6, rank, e["name"], e["ph"],
                    args.get("a", 0), args.get("b", 0)))
    return None, sorted(evs, key=lambda e: e[0])


def report_request(path, req_id):
    rec, evs = request_events(path, req_id)
    if not evs:
        sys.exit(f"{path}: no events for request {req_id} "
                 "(was it sampled? see ServeConfig::trace_sample_every)")
    t0 = evs[0][0]
    header = f"request {req_id}: {len(evs)} events"
    if rec is not None:
        header += (f", latency {rec['latency_s'] * 1e3:.3f} ms"
                   f"{', FAILED' if rec.get('failed') else ''}"
                   f"{', slow' if rec.get('slow') else ''}")
    print(header)

    # Chronological span tree: indent by per-rank span depth so nested
    # Begin/End pairs (worker task.run inside server dispatch windows)
    # read as a tree; instants print at the current depth.
    depth = {}
    open_at = {}  # (rank, name) -> begin stack
    tasks = rules = puts = 0
    exec_s = 0.0
    for t, rank, name, ph, a, b in evs:
        rel_ms = (t - t0) * 1e3
        where = "client" if rank < 0 else f"r{rank}"
        pad = "  " * depth.get(rank, 0)
        if ph == "B":
            print(f"  {rel_ms:9.3f}ms {where:>7} {pad}{name} a={a} ...")
            depth[rank] = depth.get(rank, 0) + 1
            open_at.setdefault((rank, name), []).append(t)
        elif ph == "E":
            depth[rank] = max(depth.get(rank, 1) - 1, 0)
            pad = "  " * depth[rank]
            stack = open_at.get((rank, name), [])
            dur = f" ({(t - stack.pop()) * 1e3:.3f}ms)" if stack else ""
            print(f"  {rel_ms:9.3f}ms {where:>7} {pad}{name} end{dur}")
            if name == "task.run":
                tasks += 1
        else:
            print(f"  {rel_ms:9.3f}ms {where:>7} {pad}{name} a={a} b={b}")
            if name == "rule.fired":
                rules += 1
            elif name == "adlb.put":
                puts += 1
    # Wall summary from the span extent plus matched task.run pairs.
    exec_s = sum(pair_request_runs(evs))
    print(f"  summary: span {(evs[-1][0] - t0) * 1e3:.3f} ms, "
          f"{tasks} task(s) ({exec_s * 1e3:.3f} ms exec), "
          f"{rules} rule fire(s), {puts} put(s)")


def pair_request_runs(evs):
    """Durations of matched task.run Begin/End pairs, per rank."""
    stacks = {}
    for t, rank, name, ph, _, _ in evs:
        if name != "task.run":
            continue
        if ph == "B":
            stacks.setdefault(rank, []).append(t)
        elif ph == "E" and stacks.get(rank):
            yield t - stacks[rank].pop()


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", nargs="?", default="trace.json")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="how many slowest tasks to list (default 10)")
    ap.add_argument("--request", type=int, default=None, metavar="ID",
                    help="render one serve request's cross-rank span tree "
                         "(from trace.json or a requests.jsonl stream)")
    args = ap.parse_args()
    if not os.path.exists(args.trace):
        sys.exit(f"{args.trace} not found (run with ILPS_TRACE=1 first)")
    if args.request is not None:
        report_request(args.trace, args.request)
    else:
        report(args.trace, args.top)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
