#!/usr/bin/env python3
"""Summarize an ILPS trace.json (and optional metrics.json).

Reads the Chrome-trace file written by a run with ILPS_TRACE=1 and prints:
  - the top-N slowest task.run spans (task id, rank, start, duration)
  - steal / rebalance counts per rank
  - per-rank busy fraction (union of busy spans vs the run window)
  - selected counters from metrics.json when present next to the trace

Usage:
  tools/trace_report.py [trace.json] [--top N]

No dependencies beyond the standard library.
"""
import argparse
import json
import os
import sys

# Span kinds whose duration counts as busy (matches obs::kind_is_busy).
BUSY = {"task.run", "server.handle", "ckpt.write", "ckpt.restore"}


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    return doc["traceEvents"]


def thread_names(events):
    names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            names[e["tid"]] = e["args"]["name"]
    return names


def pair_spans(events, name_filter=None):
    """Yield (name, tid, start_us, dur_us, args) for matched B/E pairs."""
    stacks = {}
    for e in events:
        ph = e.get("ph")
        if ph not in ("B", "E"):
            continue
        key = (e["tid"], e["name"])
        if name_filter and e["name"] not in name_filter:
            continue
        if ph == "B":
            stacks.setdefault(key, []).append(e)
        else:
            stack = stacks.get(key)
            if not stack:
                continue  # Begin fell off the ring buffer
            b = stack.pop()
            yield (e["name"], e["tid"], b["ts"], e["ts"] - b["ts"], b.get("args", {}))


def report(trace_path, top_n):
    events = load_events(trace_path)
    names = thread_names(events)
    real = [e for e in events if e.get("ph") in ("B", "E", "i")]
    if not real:
        print("trace contains no events")
        return
    t_lo = min(e["ts"] for e in real)
    t_hi = max(e["ts"] for e in real)
    window = max(t_hi - t_lo, 1e-9)

    print(f"{trace_path}: {len(real)} events, {len(names)} ranks, "
          f"window {window / 1e6:.3f} s")

    # ---- top-N slowest tasks ----
    tasks = sorted(pair_spans(events, {"task.run"}), key=lambda s: -s[3])
    print(f"\ntop {min(top_n, len(tasks))} slowest tasks (of {len(tasks)}):")
    print(f"  {'task':>8} {'rank':>16} {'start_s':>9} {'dur_ms':>9}")
    for name, tid, ts, dur, args in tasks[:top_n]:
        rank = names.get(tid, f"rank {tid}")
        print(f"  {args.get('a', '?'):>8} {rank:>16} {ts / 1e6:>9.3f} {dur / 1e3:>9.3f}")

    # ---- steals / rebalance ----
    steals = {}
    units = {}
    for e in events:
        if e.get("name") == "adlb.steal" and e.get("ph") == "i":
            steals[e["tid"]] = steals.get(e["tid"], 0) + 1
            units[e["tid"]] = units.get(e["tid"], 0) + e.get("args", {}).get("b", 0)
    if steals:
        print("\nsteal batches by sending rank:")
        for tid in sorted(steals):
            print(f"  {names.get(tid, f'rank {tid}'):>16}: "
                  f"{steals[tid]} batches, {units[tid]} units")
    else:
        print("\nno steal/rebalance events")

    # ---- per-rank busy fraction ----
    busy = {}
    counts = {}
    for e in real:
        counts[e["tid"]] = counts.get(e["tid"], 0) + 1
    for name, tid, ts, dur, _ in pair_spans(events, BUSY):
        busy.setdefault(tid, []).append((ts, ts + dur))
    print("\nper-rank utilization:")
    print(f"  {'rank':>16} {'events':>7} {'busy_s':>8} {'busy%':>6}")
    for tid in sorted(counts):
        merged, end = 0.0, None
        for lo, hi in sorted(busy.get(tid, [])):
            if end is None or lo > end:
                merged += hi - lo
                end = hi
            elif hi > end:
                merged += hi - end
                end = hi
        print(f"  {names.get(tid, f'rank {tid}'):>16} {counts[tid]:>7} "
              f"{merged / 1e6:>8.3f} {100.0 * merged / window:>5.1f}%")

    # ---- metrics.json, if present beside the trace ----
    metrics_path = os.path.join(os.path.dirname(trace_path) or ".", "metrics.json")
    if os.path.exists(metrics_path):
        with open(metrics_path) as f:
            m = json.load(f)
        interesting = ["worker.tasks", "adlb.puts", "adlb.matches", "adlb.requeues",
                       "engine.rules_fired", "mpi.messages", "mpi.bytes",
                       "run.attempts", "run.dead_ranks"]
        print(f"\n{metrics_path}:")
        for k in interesting:
            if k in m.get("counters", {}):
                print(f"  {k:>20}: {m['counters'][k]}")
        for name, h in m.get("histograms", {}).items():
            print(f"  {name:>20}: n={h['count']} p50={h['p50']:.6f} "
                  f"p99={h['p99']:.6f} max={h['max']:.6f}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace", nargs="?", default="trace.json")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="how many slowest tasks to list (default 10)")
    args = ap.parse_args()
    if not os.path.exists(args.trace):
        sys.exit(f"{args.trace} not found (run with ILPS_TRACE=1 first)")
    report(args.trace, args.top)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
