#!/usr/bin/env python3
"""ilps-lint: project-specific concurrency invariant checker for the ILPS runtime.

Four rules that neither the compiler nor generic linters can see:

  R1 no-blocking-under-lock
     No blocking transport call (send/recv/barrier/park/get/put/serve,
     condvar-free sleeps, future waits) while any ilps::LockGuard /
     ilps::UniqueLock scope is active. Blocking while holding a lock
     couples unrelated threads to transport latency and is the classic
     distributed-deadlock shape. CondVar waits are exempt: they release
     the lock while sleeping.

  R2 undocumented-ordering
     Every explicit memory_order_relaxed / _acquire / _release /
     _acq_rel / _consume operation must carry an `// ordering:` comment
     on the same line or within the 6 lines above it, stating which
     happens-before edge it provides (or why none is needed).
     memory_order_seq_cst is exempt (the conservative default).
     Blessed wrapper: ilps::RelaxedCounter (src/common/sync.h).

  R3 raw-sync-outside-common
     No raw std::mutex / std::condition_variable / std::atomic /
     std::lock_guard / std::unique_lock / std::scoped_lock /
     std::shared_mutex / std::recursive_mutex declarations outside
     src/common. Use ilps::Mutex / ilps::CondVar / ilps::LockGuard /
     ilps::UniqueLock / ilps::Atomic<T> / ilps::RelaxedCounter so the
     clang thread-safety analysis sees every lock scope.

  R4 lock-order-cycle
     The declared lock hierarchy — `// ILPS_LOCK_ORDER: a < b` comment
     lines plus ILPS_ACQUIRED_BEFORE/AFTER attribute arguments — must
     form a DAG. A cycle means two threads can acquire the same pair of
     locks in opposite orders.

Usage:
  tools/ilps_lint.py -p build/compile_commands.json   # lint the project
  tools/ilps_lint.py src/mpi/world.cc ...             # lint named files
  tools/ilps_lint.py --list-rules

Suppression: append `// ilps-lint: allow(<rule>)` to the offending line,
with a reason, e.g. `// ilps-lint: allow(no-blocking-under-lock) -- <why>`.

Exit status: 0 clean, 1 findings, 2 usage/IO error. Pure stdlib (no
libclang): a comment/string-aware lexer plus brace-depth lock-scope
tracking, deliberately conservative in what it recognizes.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

RULES = {
    "no-blocking-under-lock": "blocking transport call while a lock scope is active",
    "undocumented-ordering": "explicit non-seq_cst memory order without an `// ordering:` comment",
    "raw-sync-outside-common": "raw std:: sync primitive declared outside src/common",
    "lock-order-cycle": "declared lock hierarchy (ILPS_LOCK_ORDER / ACQUIRED_BEFORE) has a cycle",
}

# Blocking calls by method name, matched only when the receiver looks
# like a transport endpoint or thread (see TRANSPORT_RECEIVER_RE) so that
# unrelated `ptr.get()` / `map.put()` style calls don't trip the rule.
# These park the calling thread on transport or scheduling progress.
BLOCKING_METHODS = {
    "send",
    "recv",
    "recv_for",
    "recv_any",
    "barrier",
    "broadcast",
    "gather",
    "reduce_sum",
    "allreduce_sum",
    "exchange",
    "put",
    "get",
    "run",
    "wait_match",
    "park_until_drained",
    "serve",
    "join",
}
# Receiver names that mark a call as transport/thread-blocking. Deliberately
# conservative: a blocking call on an unrecognizably-named receiver is
# missed rather than spamming false positives on containers and smart
# pointers.
TRANSPORT_RECEIVER_RE = re.compile(
    r"(client|comm|world|server|channel|sock|transport|thread)", re.IGNORECASE
)
# Blocking free/namespaced calls (flagged under any receiver-less form).
BLOCKING_FREE = {
    "std::this_thread::sleep_for",
    "std::this_thread::sleep_until",
}

# Lock scopes R1 tracks. CondVar waits release the lock, so cv.wait()
# under a UniqueLock is fine; the UniqueLock scope itself still counts
# for every other statement in it.
LOCK_SCOPE_RE = re.compile(
    r"\b(?:ilps::)?(LockGuard|UniqueLock)\s+(\w+)\s*[({]"
)
STD_LOCK_SCOPE_RE = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\s*<[^;]*>\s*(\w+)\s*[({]"
)

ORDER_RE = re.compile(
    r"\bmemory_order_(relaxed|acquire|release|acq_rel|consume)\b"
)
ORDER_COMMENT_RE = re.compile(r"//\s*ordering:")

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|condition_variable(?:_any)?|atomic(?:_flag)?|lock_guard|"
    r"unique_lock|scoped_lock|shared_mutex|shared_lock|recursive_mutex|"
    r"counting_semaphore|binary_semaphore|latch|barrier)\b"
)

LOCK_ORDER_RE = re.compile(
    r"//\s*ILPS_LOCK_ORDER:\s*([\w.]+)\s*<\s*([\w.]+)"
)
ACQ_BEFORE_RE = re.compile(r"\bILPS_ACQUIRED_BEFORE\s*\(([^)]*)\)")
ACQ_AFTER_RE = re.compile(r"\bILPS_ACQUIRED_AFTER\s*\(([^)]*)\)")

SUPPRESS_RE = re.compile(r"//\s*ilps-lint:\s*allow\(([\w-]+(?:\s*,\s*[\w-]+)*)\)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str):
    """Return (code, comments) where each is a list of per-line strings.

    `code` has comments and string/char literal *contents* blanked (so
    regexes never match inside them) but line structure preserved;
    `comments` holds only the comment text per line (for ordering-comment
    and suppression lookups).
    """
    n = len(text)
    code_chars: list[str] = []
    comment_chars: list[str] = []
    i = 0
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_chars.append("//")
                code_chars.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_chars.append("/*")
                code_chars.append("  ")
                i += 2
                continue
            if c == '"':
                # raw string literal?
                m = re.match(r'R"([^(\s]{0,16})\(', text[i - 1 : i + 20]) if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw_string"
                    code_chars.append('"')
                    i += 1
                    continue
                state = "string"
                code_chars.append('"')
                comment_chars.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                code_chars.append("'")
                comment_chars.append(" ")
                i += 1
                continue
            code_chars.append(c)
            comment_chars.append("\n" if c == "\n" else " ")
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                code_chars.append("\n")
                comment_chars.append("\n")
            else:
                code_chars.append(" ")
                comment_chars.append(c)
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                code_chars.append("  ")
                comment_chars.append("*/")
                i += 2
                continue
            code_chars.append("\n" if c == "\n" else " ")
            comment_chars.append(c)
            i += 1
        elif state == "string":
            if c == "\\":
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                code_chars.append('"')
            else:
                code_chars.append("\n" if c == "\n" else " ")
            comment_chars.append(" ")
            i += 1
        elif state == "char":
            if c == "\\":
                code_chars.append("  ")
                comment_chars.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                code_chars.append("'")
            else:
                code_chars.append(" ")
            comment_chars.append(" ")
            i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                code_chars.append('"' + " " * (len(raw_delim) - 1))
                comment_chars.append(" " * len(raw_delim))
                i += len(raw_delim)
                continue
            code_chars.append("\n" if c == "\n" else " ")
            comment_chars.append("\n" if c == "\n" else " ")
            i += 1
    code = "".join(code_chars).split("\n")
    comments = "".join(comment_chars).split("\n")
    # Comment buffer loses newlines consumed inside multi-char tokens;
    # normalize lengths defensively.
    while len(comments) < len(code):
        comments.append("")
    return code, comments


def suppressed(rule: str, comments: list[str], line_idx: int) -> bool:
    m = SUPPRESS_RE.search(comments[line_idx]) if line_idx < len(comments) else None
    if not m:
        return False
    allowed = {r.strip() for r in m.group(1).split(",")}
    return rule in allowed


def check_blocking_under_lock(path, code, comments, findings):
    """R1: track active lock scopes by brace depth; flag blocking calls inside."""
    depth = 0
    scopes: list[list] = []  # [entry_depth, var, held]
    blocking_call = re.compile(
        r"(\w+)\s*(?:\.|->)\s*(" + "|".join(sorted(BLOCKING_METHODS)) + r")\s*\("
    )
    blocking_free = re.compile(
        "(" + "|".join(re.escape(f) for f in sorted(BLOCKING_FREE)) + r")\s*\("
    )
    cv_wait = re.compile(r"[.>]\s*(wait|wait_for|wait_until)\s*\(")
    for idx, line in enumerate(code):
        held = [s for s in scopes if s[2]]
        if held and not cv_wait.search(line):
            name = None
            m = blocking_call.search(line)
            if m and TRANSPORT_RECEIVER_RE.search(m.group(1)):
                name = m.group(2)
            else:
                m = blocking_free.search(line)
                if m:
                    name = m.group(1)
            if name and not suppressed("no-blocking-under-lock", comments, idx):
                locks = ", ".join(s[1] for s in held)
                findings.append(
                    Finding(
                        path,
                        idx + 1,
                        "no-blocking-under-lock",
                        f"blocking call `{name}` while holding lock scope(s) {locks}",
                    )
                )
        for mm in LOCK_SCOPE_RE.finditer(line):
            scopes.append([depth, mm.group(2), True])
        for mm in STD_LOCK_SCOPE_RE.finditer(line):
            scopes.append([depth, mm.group(1), True])
        for s in scopes:
            if re.search(rf"\b{re.escape(s[1])}\s*\.\s*unlock\s*\(", line):
                s[2] = False
            elif re.search(rf"\b{re.escape(s[1])}\s*\.\s*lock\s*\(", line):
                s[2] = True
        for c in line:
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                scopes = [s for s in scopes if s[0] <= depth]


def check_ordering_comments(path, code, comments, findings):
    for idx, line in enumerate(code):
        m = ORDER_RE.search(line)
        if not m:
            continue
        window = comments[max(0, idx - 6) : idx + 1]
        if any(ORDER_COMMENT_RE.search(c) for c in window):
            continue
        if suppressed("undocumented-ordering", comments, idx):
            continue
        findings.append(
            Finding(
                path,
                idx + 1,
                "undocumented-ordering",
                f"memory_order_{m.group(1)} without an `// ordering:` comment "
                "on the same line or the 6 lines above",
            )
        )


def check_raw_sync(path, code, comments, findings):
    rel = os.path.relpath(path)
    norm = rel.replace(os.sep, "/")
    if "src/common/" in norm or norm.startswith("common/"):
        return  # the wrappers themselves live here
    for idx, line in enumerate(code):
        m = RAW_SYNC_RE.search(line)
        if not m:
            continue
        # `std::atomic` inside a template alias/using from sync.h is only in
        # src/common; here any textual use in code counts, including
        # includes? No: includes are allowed (they may be transitively
        # needed); only declarations/uses in code lines matter. #include
        # lines contain the header name inside <>, not std:: tokens, so
        # nothing to special-case.
        if suppressed("raw-sync-outside-common", comments, idx):
            continue
        findings.append(
            Finding(
                path,
                idx + 1,
                "raw-sync-outside-common",
                f"raw std::{m.group(1)} outside src/common — use the ilps:: "
                "wrappers from common/sync.h",
            )
        )


def split_args(arglist: str) -> list[str]:
    return [a.strip() for a in arglist.split(",") if a.strip()]


def collect_lock_order_edges(path, code, comments, edges):
    for idx, cline in enumerate(comments):
        m = LOCK_ORDER_RE.search(cline)
        if m:
            edges.append((m.group(1), m.group(2), path, idx + 1))
    for idx, line in enumerate(code):
        for m in ACQ_BEFORE_RE.finditer(line):
            for other in split_args(m.group(1)):
                edges.append(("<attr-site>", other, path, idx + 1))
        for m in ACQ_AFTER_RE.finditer(line):
            for other in split_args(m.group(1)):
                edges.append((other, "<attr-site>", path, idx + 1))


def check_lock_order_cycles(edges, findings):
    graph: dict[str, list[tuple[str, str, int]]] = {}
    for a, b, path, line in edges:
        if a == "<attr-site>" or b == "<attr-site>":
            continue  # attribute sites without a global name cannot cycle here
        graph.setdefault(a, []).append((b, path, line))
        graph.setdefault(b, [])
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    stack: list[str] = []

    def dfs(n: str):
        color[n] = GRAY
        stack.append(n)
        for b, path, line in graph[n]:
            if color[b] == GRAY:
                cycle = stack[stack.index(b) :] + [b]
                findings.append(
                    Finding(
                        path,
                        line,
                        "lock-order-cycle",
                        "lock hierarchy cycle: " + " < ".join(cycle),
                    )
                )
            elif color[b] == WHITE:
                dfs(b)
        stack.pop()
        color[n] = BLACK

    for n in sorted(graph):
        if color[n] == WHITE:
            dfs(n)


def lint_files(paths: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    edges: list[tuple[str, str, str, int]] = []
    for path in paths:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"ilps-lint: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        code, comments = strip_comments_and_strings(text)
        check_blocking_under_lock(path, code, comments, findings)
        check_ordering_comments(path, code, comments, findings)
        check_raw_sync(path, code, comments, findings)
        collect_lock_order_edges(path, code, comments, edges)
    check_lock_order_cycles(edges, findings)
    return findings


def files_from_compile_db(db_path: str) -> list[str]:
    try:
        with open(db_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"ilps-lint: cannot load {db_path}: {e}", file=sys.stderr)
        sys.exit(2)
    seen = set()
    out = []
    for entry in db:
        f = entry.get("file", "")
        if not f:
            continue
        path = f if os.path.isabs(f) else os.path.join(entry.get("directory", "."), f)
        path = os.path.normpath(path)
        norm = path.replace(os.sep, "/")
        if "/src/" not in norm and not norm.startswith("src/"):
            continue  # lint covers the runtime, not tests/benches/third-party
        if path in seen or not path.endswith((".cc", ".cpp", ".cxx", ".c")):
            continue
        seen.add(path)
        out.append(path)
        # Companion header, if any.
        for ext in (".h", ".hpp"):
            h = os.path.splitext(path)[0] + ext
            if os.path.exists(h) and h not in seen:
                seen.add(h)
                out.append(h)
    # Headers with no .cc twin (e.g. sync.h) — walk each src dir seen.
    src_dirs = sorted({os.path.dirname(p) for p in out})
    for d in src_dirs:
        try:
            names = os.listdir(d)
        except OSError:
            continue
        for name in sorted(names):
            if name.endswith((".h", ".hpp")):
                h = os.path.join(d, name)
                if h not in seen:
                    seen.add(h)
                    out.append(h)
    return sorted(out)


def main() -> int:
    ap = argparse.ArgumentParser(prog="ilps-lint", description=__doc__.split("\n")[0])
    ap.add_argument("files", nargs="*", help="files to lint")
    ap.add_argument("-p", "--compile-db", metavar="DB",
                    help="compile_commands.json (lints every src/ TU + headers)")
    ap.add_argument("--list-rules", action="store_true", help="list rules and exit")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0

    paths = list(args.files)
    if args.compile_db:
        paths.extend(files_from_compile_db(args.compile_db))
    if not paths:
        ap.print_usage(sys.stderr)
        print("ilps-lint: no input files (pass files or -p compile_commands.json)",
              file=sys.stderr)
        return 2

    findings = lint_files(paths)
    for f in findings:
        print(f)
    if findings:
        print(f"ilps-lint: {len(findings)} finding(s) in {len(paths)} file(s)",
              file=sys.stderr)
        return 1
    print(f"ilps-lint: clean ({len(paths)} file(s))", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
