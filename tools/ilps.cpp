// ilps — command-line driver: compile and run a Swift program on the ILPS
// runtime (the `swift-t` / `turbine` entry point of the original system).
//
//   ilps [options] program.swift
//
//   --engines N       engine ranks (default 1)
//   --workers N       worker ranks (default 2)
//   --servers N       ADLB server ranks (default 1)
//   --policy P        interpreter policy: retain (default) | reinit
//   --restricted-os   refuse fork/exec (Blue Gene/Q mode)
//   --emit-tcl        print the compiled Turbine code and exit
//   --lint            run swift-verify only; print diagnostics and exit
//   --stats           print runtime statistics after the program output
//   --serve-status [dir]  render the latest live-telemetry snapshot a
//                     resident service streamed to <dir>/telemetry.jsonl
//                     (default "."; see ILPS_TELEMETRY_DIR) and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analysis.h"
#include "runtime/runner.h"
#include "swift/compiler.h"
#include "swift/ast.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ilps [options] program.swift\n"
               "  --engines N --workers N --servers N\n"
               "  --policy retain|reinit   --restricted-os\n"
               "  --emit-tcl  --lint       --stats\n"
               "  --serve-status [dir]\n");
}

// Pulls the first numeric value following "<key>": out of a JSON line.
// The telemetry stream is machine-written line JSON with known keys, so a
// substring scan is enough — no parser dependency for the status view.
double json_field(const std::string& hay, const char* key, double missing = -1) {
  const std::string pat = std::string("\"") + key + "\":";
  const size_t pos = hay.find(pat);
  if (pos == std::string::npos) return missing;
  return std::atof(hay.c_str() + pos + pat.size());
}

// `ilps --serve-status [dir]`: the last metrics snapshot a resident
// service flushed, rendered as a terminal status line. Works on a live
// service (tail of an actively-appended file) or post-mortem.
int serve_status(const std::string& dir) {
  const std::string path = dir + "/telemetry.jsonl";
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr,
                 "ilps: cannot open %s\n"
                 "  (start the service with ILPS_TELEMETRY_DIR=%s to stream telemetry)\n",
                 path.c_str(), dir.c_str());
    return 1;
  }
  std::string line;
  std::string last;
  size_t snapshots = 0;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"metrics\"") != std::string::npos) {
      last = std::move(line);
      ++snapshots;
    }
  }
  if (last.empty()) {
    std::fprintf(stderr, "ilps: %s holds no metrics snapshots yet\n", path.c_str());
    return 1;
  }
  size_t streamed_requests = 0;
  {
    std::ifstream reqs(dir + "/requests.jsonl");
    while (std::getline(reqs, line)) {
      if (!line.empty()) ++streamed_requests;
    }
  }
  // The embedded "service" object (serve::Service::status_json) carries
  // the authoritative serve-side fields; scope scans to it so its keys
  // don't collide with the raw counter dump earlier in the line.
  const size_t svc_pos = last.find("\"service\":");
  const std::string svc = svc_pos == std::string::npos ? last : last.substr(svc_pos);

  std::printf("%s: %zu snapshot(s), %zu streamed request record(s)\n", path.c_str(), snapshots,
              streamed_requests);
  std::printf("  uptime %.1fs, %.0f inflight | admitted %.0f, completed %.0f, failed %.0f, "
              "rejected %.0f, shed %.0f\n",
              json_field(svc, "uptime_s", 0), json_field(svc, "inflight", 0),
              json_field(svc, "admitted", 0), json_field(svc, "completed", 0),
              json_field(svc, "failed", 0), json_field(svc, "rejected", 0),
              json_field(svc, "shed", 0));
  std::printf("  slow %.0f, traced %.0f | programs compiled %.0f (cache hits %.0f)\n",
              json_field(svc, "slow_requests", 0), json_field(svc, "traced_requests", 0),
              json_field(svc, "programs_compiled", 0), json_field(svc, "program_cache_hits", 0));
  const size_t win_pos = svc.find("\"window\":");
  if (win_pos != std::string::npos) {
    const std::string win = svc.substr(win_pos);
    std::printf("  last %.0fs: n=%.0f p50=%.3fms p90=%.3fms p99=%.3fms p999=%.3fms\n",
                json_field(win, "window_s", 0), json_field(win, "count", 0),
                json_field(win, "p50", 0) * 1e3, json_field(win, "p90", 0) * 1e3,
                json_field(win, "p99", 0) * 1e3, json_field(win, "p999", 0) * 1e3);
  }
  // Per-rank busy seconds: scan the "ranks":[...] array element-wise.
  const size_t ranks_pos = svc.find("\"ranks\":[");
  if (ranks_pos != std::string::npos) {
    size_t cur = ranks_pos + std::strlen("\"ranks\":[");
    const size_t end = svc.find(']', cur);
    std::printf("  per-rank busy seconds:");
    bool any = false;
    while (cur < end) {
      const size_t open = svc.find('{', cur);
      if (open == std::string::npos || open > end) break;
      const size_t close = svc.find('}', open);
      const std::string obj = svc.substr(open, close - open);
      std::string role = "?";
      const size_t rpos = obj.find("\"role\":\"");
      if (rpos != std::string::npos) {
        const size_t rstart = rpos + std::strlen("\"role\":\"");
        role = obj.substr(rstart, obj.find('"', rstart) - rstart);
      }
      std::printf(" r%.0f/%s=%.2f", json_field(obj, "rank", -1), role.c_str(),
                  json_field(obj, "busy_s", 0));
      any = true;
      cur = close + 1;
    }
    std::printf(any ? "\n" : " (none)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ilps::runtime::Config cfg;
  bool emit_tcl = false;
  bool lint = false;
  bool stats = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      out = std::atoi(argv[++i]);
    };
    if (arg == "--engines") {
      next_int(cfg.engines);
    } else if (arg == "--workers") {
      next_int(cfg.workers);
    } else if (arg == "--servers") {
      next_int(cfg.servers);
    } else if (arg == "--policy") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      std::string p = argv[++i];
      if (p == "retain") {
        cfg.policy = ilps::turbine::InterpPolicy::kRetain;
      } else if (p == "reinit") {
        cfg.policy = ilps::turbine::InterpPolicy::kReinitialize;
      } else {
        std::fprintf(stderr, "ilps: unknown policy \"%s\"\n", p.c_str());
        return 2;
      }
    } else if (arg == "--restricted-os") {
      cfg.restricted_os = true;
    } else if (arg == "--serve-status") {
      std::string dir = ".";
      if (i + 1 < argc && argv[i + 1][0] != '-') dir = argv[i + 1];
      return serve_status(dir);
    } else if (arg == "--emit-tcl") {
      emit_tcl = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ilps: unknown option \"%s\"\n", arg.c_str());
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ilps: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    if (lint) {
      // swift-verify standalone: parse, analyze, print every diagnostic.
      ilps::swift::Program prog = ilps::swift::parse_swift(source.str());
      ilps::analysis::Report report = ilps::analysis::analyze(prog);
      std::string text = report.to_string();
      if (!text.empty()) std::fputs(text.c_str(), stderr);
      if (report.has_errors()) {
        std::fprintf(stderr, "ilps: %zu error(s) in %s\n", report.error_count(), path.c_str());
        return 1;
      }
      std::fprintf(stderr, "ilps: %s passes swift-verify\n", path.c_str());
      return 0;
    }
    std::string program = ilps::swift::compile(source.str());
    if (emit_tcl) {
      std::fputs(program.c_str(), stdout);
      return 0;
    }
    cfg.echo_output = true;  // stream program output as it happens
    auto result = ilps::runtime::run_program(cfg, program);
    if (stats) {
      std::fprintf(stderr,
                   "-- ilps stats: %.3fs, %llu rules fired, %llu worker tasks, "
                   "%llu messages, %llu data ops\n",
                   result.elapsed_seconds,
                   static_cast<unsigned long long>(result.engine_stats.rules_fired),
                   static_cast<unsigned long long>(result.worker_stats.tasks),
                   static_cast<unsigned long long>(result.traffic.messages),
                   static_cast<unsigned long long>(result.server_stats.data_ops));
    }
    return 0;
  } catch (const ilps::DeadlockError& e) {
    std::fprintf(stderr, "ilps: %s\n", e.what());
    return 3;
  } catch (const ilps::Error& e) {
    std::fprintf(stderr, "ilps: %s\n", e.what());
    return 1;
  }
}
