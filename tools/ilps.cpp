// ilps — command-line driver: compile and run a Swift program on the ILPS
// runtime (the `swift-t` / `turbine` entry point of the original system).
//
//   ilps [options] program.swift
//
//   --engines N       engine ranks (default 1)
//   --workers N       worker ranks (default 2)
//   --servers N       ADLB server ranks (default 1)
//   --policy P        interpreter policy: retain (default) | reinit
//   --restricted-os   refuse fork/exec (Blue Gene/Q mode)
//   --emit-tcl        print the compiled Turbine code and exit
//   --lint            run swift-verify only; print diagnostics and exit
//   --stats           print runtime statistics after the program output
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analysis.h"
#include "runtime/runner.h"
#include "swift/compiler.h"
#include "swift/ast.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: ilps [options] program.swift\n"
               "  --engines N --workers N --servers N\n"
               "  --policy retain|reinit   --restricted-os\n"
               "  --emit-tcl  --lint       --stats\n");
}

}  // namespace

int main(int argc, char** argv) {
  ilps::runtime::Config cfg;
  bool emit_tcl = false;
  bool lint = false;
  bool stats = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      out = std::atoi(argv[++i]);
    };
    if (arg == "--engines") {
      next_int(cfg.engines);
    } else if (arg == "--workers") {
      next_int(cfg.workers);
    } else if (arg == "--servers") {
      next_int(cfg.servers);
    } else if (arg == "--policy") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      std::string p = argv[++i];
      if (p == "retain") {
        cfg.policy = ilps::turbine::InterpPolicy::kRetain;
      } else if (p == "reinit") {
        cfg.policy = ilps::turbine::InterpPolicy::kReinitialize;
      } else {
        std::fprintf(stderr, "ilps: unknown policy \"%s\"\n", p.c_str());
        return 2;
      }
    } else if (arg == "--restricted-os") {
      cfg.restricted_os = true;
    } else if (arg == "--emit-tcl") {
      emit_tcl = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ilps: unknown option \"%s\"\n", arg.c_str());
      usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "ilps: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    if (lint) {
      // swift-verify standalone: parse, analyze, print every diagnostic.
      ilps::swift::Program prog = ilps::swift::parse_swift(source.str());
      ilps::analysis::Report report = ilps::analysis::analyze(prog);
      std::string text = report.to_string();
      if (!text.empty()) std::fputs(text.c_str(), stderr);
      if (report.has_errors()) {
        std::fprintf(stderr, "ilps: %zu error(s) in %s\n", report.error_count(), path.c_str());
        return 1;
      }
      std::fprintf(stderr, "ilps: %s passes swift-verify\n", path.c_str());
      return 0;
    }
    std::string program = ilps::swift::compile(source.str());
    if (emit_tcl) {
      std::fputs(program.c_str(), stdout);
      return 0;
    }
    cfg.echo_output = true;  // stream program output as it happens
    auto result = ilps::runtime::run_program(cfg, program);
    if (stats) {
      std::fprintf(stderr,
                   "-- ilps stats: %.3fs, %llu rules fired, %llu worker tasks, "
                   "%llu messages, %llu data ops\n",
                   result.elapsed_seconds,
                   static_cast<unsigned long long>(result.engine_stats.rules_fired),
                   static_cast<unsigned long long>(result.worker_stats.tasks),
                   static_cast<unsigned long long>(result.traffic.messages),
                   static_cast<unsigned long long>(result.server_stats.data_ops));
    }
    return 0;
  } catch (const ilps::DeadlockError& e) {
    std::fprintf(stderr, "ilps: %s\n", e.what());
    return 3;
  } catch (const ilps::Error& e) {
    std::fprintf(stderr, "ilps: %s\n", e.what());
    return 1;
  }
}
