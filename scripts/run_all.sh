#!/bin/sh
# Builds everything, runs the test suite, every example, and every
# benchmark — the full validation pass described in README.md.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build

echo "== examples =="
for e in quickstart montecarlo_pi param_sweep_r native_blobs \
         interlang_pipeline mapreduce_words fault_tolerance; do
  echo "-- $e"
  ./build/examples/$e
done

echo "== swift scripts through the ilps driver =="
for s in scripts/*.swift; do
  echo "-- $s"
  ./build/tools/ilps --workers 4 "$s"
done

echo "== benches =="
for b in build/bench/bench_*; do
  "$b"
done
