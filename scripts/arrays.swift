// Swift arrays over Turbine containers:
//   ./build/tools/ilps --workers 4 scripts/arrays.swift
(int o) work (int i) [ "set <<o>> [ expr <<i>> * 11 ]" ];

int A[];
foreach i in [0:5] {
  A[i] = work(i);
}
int n = size(A);
printf("array complete with %d entries", n);
foreach v, i in A {
  printf("A[%d] = %d", i, v);
}
