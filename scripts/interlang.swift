// Python and R cooperating through Swift futures:
//   ./build/tools/ilps scripts/interlang.swift
string py = python("v = sum([i * i for i in range(10)])", "v");
string rexpr = strcat("x <- ", py, " / 5");
string res = r(rexpr, "x");
printf("sum of squares 0..9 = %s; divided by 5 in R = %s", py, res);
