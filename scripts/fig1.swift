// The paper's Fig. 1 loop, runnable directly:
//   ./build/tools/ilps --workers 4 scripts/fig1.swift
(int o) f (int i) [ "set <<o>> [ expr <<i>> * <<i>> ]" ];
(int o) g (int t) [ "set <<o>> [ expr <<t>> % 3 ]" ];

foreach i in [0:9] {
  int t = f(i);
  int gt = g(t);
  if (gt == 0) { printf("g(%d) == 0", t); }
}
